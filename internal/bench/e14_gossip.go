package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"whisper/internal/gossip"
	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

// This file implements experiment E14: the cost of keeping a sharded
// rendezvous index converged. A fleet of discovery shards replicates
// the advertisement set epidemically (rumor mongering + anti-entropy,
// internal/gossip); the experiment measures, for growing advertisement
// counts, how many wire messages the epidemic needs against the flood
// baseline — the legacy dissemination, which republishes every
// advertisement to every shard each lease window because its wire
// protocol has no versions and no absolute expiry, so periodic
// re-flooding is its only refresh mechanism. A gossip entry instead
// carries (origin, version, expiry): one publish to the triple's ring
// owner and the epidemic does the rest.
//
// The second axis is the convergence scaling curve: with the
// advertisement count held fixed, how does time-to-all-shards-visible
// grow with fleet size? Rumor mongering with fanout f infects
// super-exponentially, so the curve should be ~O(log n), not O(n) —
// the property that makes large fleets affordable.

// GossipOptions configures E14.
type GossipOptions struct {
	// AdCounts are the advertisement set sizes swept for the message
	// comparison (default 1000, 10000, 100000).
	AdCounts []int
	// Shards is the fleet size for the message comparison (default 4).
	Shards int
	// Windows is how many lease windows the flood baseline refreshes
	// over (default 3): flood cost = 2 × ads × shards × windows
	// messages (request + response per republish).
	Windows int
	// PeerCounts are the fleet sizes swept for the convergence curve
	// (default 2, 4, 8, 16).
	PeerCounts []int
	// SweepAds is the advertisement count held fixed across the
	// convergence sweep (default 1000).
	SweepAds int
	// Interval is the rumor round interval for the message comparison
	// (default 2ms; the sweep uses SweepInterval).
	Interval time.Duration
	// SweepInterval is the rumor round interval for the convergence
	// sweep (default 25ms — coarse rounds quantize the measurement so
	// scheduler noise does not drown the curve).
	SweepInterval time.Duration
	// Publishers is the number of concurrent publishing workers
	// (default 8).
	Publishers int
	// Seed drives the simulated network and the engines' peer
	// selection.
	Seed int64
}

func (o *GossipOptions) applyDefaults() {
	if len(o.AdCounts) == 0 {
		o.AdCounts = []int{1000, 10000, 100000}
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Windows <= 0 {
		o.Windows = 3
	}
	if len(o.PeerCounts) == 0 {
		o.PeerCounts = []int{2, 4, 8, 16}
	}
	if o.SweepAds <= 0 {
		o.SweepAds = 1000
	}
	if o.Interval <= 0 {
		o.Interval = 2 * time.Millisecond
	}
	if o.SweepInterval <= 0 {
		o.SweepInterval = 25 * time.Millisecond
	}
	if o.Publishers <= 0 {
		o.Publishers = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// GossipPoint is one advertisement-count measurement.
type GossipPoint struct {
	// Ads and Shards identify the configuration.
	Ads, Shards int
	// GossipMsgs / GossipBytes are the measured gossip-protocol wire
	// totals from publish start to full convergence.
	GossipMsgs, GossipBytes int64
	// FloodMsgs is the flood baseline: 2 × Ads × Shards × Windows.
	FloodMsgs int64
	// Ratio is FloodMsgs / GossipMsgs (higher = cheaper epidemic).
	Ratio float64
	// Publish is how long pushing every advertisement to its ring
	// owner took; Spread is from engine start to every shard holding
	// the full set; Convergence is the sum.
	Publish, Spread, Convergence time.Duration
}

// GossipSweepPoint is one fleet-size measurement of the convergence
// curve.
type GossipSweepPoint struct {
	// Peers is the fleet size.
	Peers int
	// Spread is the epidemic dissemination time: engines start with
	// each shard holding only the advertisements it owns, and the
	// clock stops when every shard holds all of them.
	Spread time.Duration
	// Msgs is the gossip wire traffic for the spread.
	Msgs int64
	// Rounds is the most rumor rounds any engine had completed when
	// convergence was detected — the O(log n) curve in its native
	// unit. Wall-clock spread divided by the nominal interval
	// overstates it whenever rounds run long (race detector, loaded CI
	// workers stretch the effective period).
	Rounds uint64
}

// GossipResult is the full E14 run.
type GossipResult struct {
	Points []GossipPoint
	Sweep  []GossipSweepPoint
	// SweepAds / SweepInterval echo the sweep configuration (the gate
	// uses the interval as the quantization floor).
	SweepAds      int
	SweepInterval time.Duration
}

// gossipFleet is a standalone shard fleet on a simulated network: no
// rendezvous, no groups — just the dissemination plane under test.
type gossipFleet struct {
	net    *simnet.Network
	peers  []*p2p.Peer
	svcs   []*p2p.GossipService
	router *p2p.ShardRouter
	client *p2p.GossipClient
}

// newGossipFleet builds n shards plus one publishing client. Engines
// are built but NOT running: publishes land on their owners first, and
// run() starts the epidemic — separating publish cost from spread
// cost.
func newGossipFleet(opts GossipOptions, n int, interval time.Duration) (*gossipFleet, error) {
	f := &gossipFleet{
		net: simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(opts.Seed)),
	}
	gen := p2p.NewIDGen(opts.Seed)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("shard-%d", i)
		port, err := f.net.NewPort(name)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: shard port: %w", err)
		}
		peer := p2p.NewPeer(name, gen.New(p2p.PeerIDKind), port)
		svc, err := p2p.NewGossipService(peer, p2p.GossipConfig{
			Disco:    p2p.NewDiscoveryService(peer),
			Seed:     opts.Seed + int64(i),
			Interval: interval,
		})
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("bench: gossip service: %w", err)
		}
		peer.Start()
		f.peers = append(f.peers, peer)
		f.svcs = append(f.svcs, svc)
		addrs[i] = peer.Addr()
	}
	f.router = p2p.NewShardRouter(addrs, 0)
	port, err := f.net.NewPort("bench-publisher")
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("bench: publisher port: %w", err)
	}
	cli := p2p.NewPeer("bench-publisher", gen.New(p2p.PeerIDKind), port)
	cli.Start()
	f.peers = append(f.peers, cli)
	f.client = p2p.NewGossipClient(cli)
	return f, nil
}

func (f *gossipFleet) run() {
	for i, svc := range f.svcs {
		svc.SetPeers(f.router.All())
		svc.Run()
		_ = i
	}
}

func (f *gossipFleet) Close() {
	for _, svc := range f.svcs {
		svc.Stop()
	}
	for _, p := range f.peers {
		_ = p.Close()
	}
	_ = f.net.Close()
}

// publishAll pushes ads advertisements to their ring owners through
// Publishers concurrent workers, each with its own origin so versions
// stay per-origin monotone.
func (f *gossipFleet) publishAll(ctx context.Context, opts GossipOptions, ads int) error {
	var wg sync.WaitGroup
	errs := make(chan error, opts.Publishers)
	per := (ads + opts.Publishers - 1) / opts.Publishers
	for w := 0; w < opts.Publishers; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > ads {
			hi = ads
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			pub := gossip.NewPublisher(fmt.Sprintf("bench-origin-%d", w), nil)
			var owners []string
			for i := lo; i < hi; i++ {
				action := fmt.Sprintf("action-%d", i)
				adv := &p2p.ServiceAdvertisement{
					SvcID:     p2p.ID(fmt.Sprintf("urn:whisper:bench:%d", i)),
					Name:      fmt.Sprintf("svc-%d", i),
					Operation: action,
				}
				raw, err := adv.MarshalAdv()
				if err != nil {
					errs <- err
					return
				}
				entry := pub.Entry(string(adv.AdvID()), raw, time.Hour)
				owners = f.router.AppendOwners(owners[:0], adv.AdvType(), "action", action)
				var lastErr error
				for _, owner := range owners {
					if _, lastErr = f.client.Publish(ctx, owner, entry); lastErr == nil {
						break
					}
				}
				if lastErr != nil {
					errs <- fmt.Errorf("publish %d: %w", i, lastErr)
					return
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	close(errs)
	return <-errs
}

// waitConverged polls until every shard's store holds exactly ads live
// entries with identical checksums.
func (f *gossipFleet) waitConverged(ctx context.Context, ads int) error {
	for {
		converged := true
		var checksum uint64
		for i, svc := range f.svcs {
			st := svc.Engine().Store().Stats()
			if st.Live != ads {
				converged = false
				break
			}
			if i == 0 {
				checksum = st.Checksum
			} else if st.Checksum != checksum {
				converged = false
				break
			}
		}
		if converged {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("bench: convergence: %w", ctx.Err())
		case <-time.After(time.Millisecond):
		}
	}
}

// runGossipPoint measures one (ads, shards) configuration.
func runGossipPoint(ctx context.Context, opts GossipOptions, ads, shards int, interval time.Duration) (GossipPoint, error) {
	point := GossipPoint{Ads: ads, Shards: shards}
	f, err := newGossipFleet(opts, shards, interval)
	if err != nil {
		return point, err
	}
	defer f.Close()

	f.net.ResetStats()
	start := time.Now()
	if err := f.publishAll(ctx, opts, ads); err != nil {
		return point, err
	}
	point.Publish = time.Since(start)

	spreadStart := time.Now()
	f.run()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	err = f.waitConverged(waitCtx, ads)
	cancel()
	if err != nil {
		return point, err
	}
	point.Spread = time.Since(spreadStart)
	point.Convergence = point.Publish + point.Spread

	ps := f.net.Stats().PerProto[p2p.ProtoGossip]
	point.GossipMsgs = ps.Messages
	point.GossipBytes = ps.Bytes
	point.FloodMsgs = 2 * int64(ads) * int64(shards) * int64(opts.Windows)
	if point.GossipMsgs > 0 {
		point.Ratio = float64(point.FloodMsgs) / float64(point.GossipMsgs)
	}
	return point, nil
}

// runGossipSweepPoint measures the epidemic spread time for one fleet
// size, advertisement count held fixed.
func runGossipSweepPoint(ctx context.Context, opts GossipOptions, peers int) (GossipSweepPoint, error) {
	point := GossipSweepPoint{Peers: peers}
	f, err := newGossipFleet(opts, peers, opts.SweepInterval)
	if err != nil {
		return point, err
	}
	defer f.Close()

	if err := f.publishAll(ctx, opts, opts.SweepAds); err != nil {
		return point, err
	}
	f.net.ResetStats()
	start := time.Now()
	f.run()
	waitCtx, cancel := context.WithTimeout(ctx, 2*time.Minute)
	err = f.waitConverged(waitCtx, opts.SweepAds)
	cancel()
	if err != nil {
		return point, err
	}
	point.Spread = time.Since(start)
	point.Msgs = f.net.Stats().PerProto[p2p.ProtoGossip].Messages
	for _, svc := range f.svcs {
		if r := svc.Engine().Stats().Rounds; r > point.Rounds {
			point.Rounds = r
		}
	}
	return point, nil
}

// Gossip runs E14 and returns the printable table plus the raw result.
func Gossip(ctx context.Context, opts GossipOptions) (*Table, *GossipResult, error) {
	opts.applyDefaults()
	result := &GossipResult{SweepAds: opts.SweepAds, SweepInterval: opts.SweepInterval}

	for _, ads := range opts.AdCounts {
		point, err := runGossipPoint(ctx, opts, ads, opts.Shards, opts.Interval)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: gossip %d ads: %w", ads, err)
		}
		result.Points = append(result.Points, point)
	}
	for _, n := range opts.PeerCounts {
		point, err := runGossipSweepPoint(ctx, opts, n)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: gossip sweep %d peers: %w", n, err)
		}
		result.Sweep = append(result.Sweep, point)
	}

	t := &Table{
		Title: fmt.Sprintf("Sharded discovery dissemination: gossip vs flood (%d shards, %d windows, interval %v, seed %d)",
			opts.Shards, opts.Windows, opts.Interval, opts.Seed),
		Columns: []string{"ads", "gossip msgs", "gossip bytes", "flood msgs", "ratio", "publish", "spread", "convergence"},
	}
	for _, p := range result.Points {
		t.AddRow(
			fmt.Sprintf("%d", p.Ads),
			fmt.Sprintf("%d", p.GossipMsgs),
			fmt.Sprintf("%d", p.GossipBytes),
			fmt.Sprintf("%d", p.FloodMsgs),
			fmt.Sprintf("%.1fx", p.Ratio),
			p.Publish.Round(time.Millisecond).String(),
			p.Spread.Round(time.Millisecond).String(),
			p.Convergence.Round(time.Millisecond).String())
	}
	t.AddNote("flood = legacy dissemination: republish every advertisement to every shard each lease window (no versions, no absolute expiry on the wire → re-flooding is its only refresh); messages count both requests and responses")
	t.AddNote("gossip = one publish per advertisement to its ring owner (entries carry origin/version/expiry), epidemic rumor + anti-entropy spread to the rest of the fleet")
	for _, p := range result.Sweep {
		t.AddRow(
			fmt.Sprintf("sweep %d peers", p.Peers),
			fmt.Sprintf("%d", p.Msgs),
			"-", "-", "-", "-",
			p.Spread.Round(time.Millisecond).String(),
			fmt.Sprintf("%d rounds", p.Rounds))
	}
	t.AddNote("sweep: %d ads pre-placed on their owners, engines started together; spread is time until every shard holds the full set, rounds the most rumor rounds any engine needed (fanout makes this ~O(log peers), interval %v per round)",
		opts.SweepAds, opts.SweepInterval)
	return t, result, nil
}

// GossipReport converts an E14 result into the machine-readable
// BENCH_gossip.json shape the gate consumes.
func GossipReport(t *Table, result *GossipResult) *Report {
	r := NewReport("gossip", t)
	for _, p := range result.Points {
		key := fmt.Sprintf("gossip.%d", p.Ads)
		r.AddScalar(key+".msgs", "count", float64(p.GossipMsgs))
		r.AddScalar(key+".flood_msgs", "count", float64(p.FloodMsgs))
		r.AddScalar(key+".ratio", "x", p.Ratio)
		r.AddScalar(key+".convergence", "ns", float64(p.Convergence))
		r.AddScalar(key+".spread", "ns", float64(p.Spread))
	}
	for _, p := range result.Sweep {
		key := fmt.Sprintf("sweep.%d", p.Peers)
		r.AddScalar(key+".spread", "ns", float64(p.Spread))
		r.AddScalar(key+".msgs", "count", float64(p.Msgs))
		r.AddScalar(key+".rounds", "count", float64(p.Rounds))
	}
	r.AddScalar("sweep.interval", "ns", float64(result.SweepInterval))
	r.AddScalar("sweep.ads", "count", float64(result.SweepAds))
	return r
}
