package bench

import (
	"context"
	"encoding/xml"
	"fmt"
	"time"

	"whisper/internal/backend"
	"whisper/internal/bpeer"
	"whisper/internal/core"
	"whisper/internal/ontology"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/wsdl"
)

// ClusterOptions configures one experiment deployment.
type ClusterOptions struct {
	// Peers is the number of b-peer replicas in the student group.
	Peers int
	// Latency is the network latency model; nil selects the
	// LAN-calibrated model (the paper's 100 Mbit/s testbed).
	Latency simnet.LatencyModel
	// Seed drives all randomness.
	Seed int64
	// Timings overrides protocol timeouts; zero selects bench
	// defaults (50ms heartbeats, 200ms detection).
	Timings core.Timings
	// Students is the backend dataset size.
	Students int
	// LoadSharing deploys the group with the load-sharing policy.
	LoadSharing bool
	// BackendDelay is the per-query processing time of each backend
	// store (models real database work; 0 = instantaneous).
	BackendDelay time.Duration
	// Tracing equips the deployment with a shared trace collector (see
	// core.Config.Tracing).
	Tracing bool
}

func (o *ClusterOptions) applyDefaults() {
	if o.Peers <= 0 {
		o.Peers = 3
	}
	if o.Latency == nil {
		o.Latency = simnet.NewLANModel(o.Seed + 1)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Students <= 0 {
		o.Students = 100
	}
	if o.Timings == (core.Timings{}) {
		o.Timings = core.Timings{
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
			ElectionTimeout:   100 * time.Millisecond,
			LeaseInterval:     500 * time.Millisecond,
			RendezvousLease:   5 * time.Second,
			BindTimeout:       time.Second,
			CallTimeout:       time.Second,
			RetryDelay:        50 * time.Millisecond,
		}
	}
}

// Cluster is a deployed experiment topology: network, deployment,
// the student service and its backing group.
type Cluster struct {
	Net     *simnet.Network
	Dep     *core.Deployment
	Group   *core.Group
	Service *core.Service
	opts    ClusterOptions
}

// NewCluster builds the student-management topology used by most
// experiments: one rendezvous, N b-peers (alternating operational-DB
// and data-warehouse backends) and one SOAP-fronted semantic service.
func NewCluster(ctx context.Context, opts ClusterOptions) (*Cluster, error) {
	opts.applyDefaults()
	net := simnet.NewNetwork(simnet.WithLatency(opts.Latency), simnet.WithSeed(opts.Seed))
	dep, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      opts.Seed,
		Timings:   opts.Timings,
		Tracing:   opts.Tracing,
	})
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	c := &Cluster{Net: net, Dep: dep, opts: opts}

	records := backend.SeedStudents(opts.Students, opts.Seed)
	specs := make([]core.ReplicaSpec, opts.Peers)
	for i := range specs {
		var store backend.StudentStore
		if i%2 == 0 {
			store = backend.NewOperationalDB(records, opts.BackendDelay)
		} else {
			store = backend.NewDataWarehouse(records, opts.BackendDelay)
		}
		specs[i] = core.ReplicaSpec{Handler: StudentHandler(store)}
	}
	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	c.Group, err = dep.DeployGroup(ctx, core.GroupSpec{
		Name:        "StudentManagement",
		Signature:   StudentSignature(),
		QoS:         qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		LoadSharing: opts.LoadSharing,
		Replicas:    specs,
	})
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("bench: deploy group: %w", err)
	}
	c.Service, err = dep.DeployService(wsdl.StudentManagement(), core.ServiceOptions{})
	if err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("bench: deploy service: %w", err)
	}
	return c, nil
}

// Close tears the topology down.
func (c *Cluster) Close() error {
	err := c.Dep.Close()
	if cerr := c.Net.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}

// Invoke performs one student lookup through the full semantic path.
func (c *Cluster) Invoke(ctx context.Context, studentID string) ([]byte, error) {
	return c.Service.Invoke(ctx, "StudentInformation", StudentRequestXML(studentID))
}

// StudentID formats the i-th student's ID (wrapping around the
// dataset).
func (c *Cluster) StudentID(i int) string {
	return fmt.Sprintf("S%04d", 1+i%c.opts.Students)
}

// StudentSignature is the semantic signature of the paper's running
// example.
func StudentSignature() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptStudentInformation,
		Inputs:  []string{ontology.ConceptStudentID},
		Outputs: []string{ontology.ConceptStudentInfo},
	}
}

// StudentRequestXML builds the operation's request body.
func StudentRequestXML(id string) []byte {
	return []byte(`<StudentInformation><StudentID>` + id + `</StudentID></StudentInformation>`)
}

// StudentHandler wraps a StudentStore as a b-peer handler.
func StudentHandler(store backend.StudentStore) bpeer.Handler {
	return bpeer.HandlerFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		var req struct {
			XMLName   xml.Name `xml:"StudentInformation"`
			StudentID string   `xml:"StudentID"`
		}
		if err := xml.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("bad request: %w", err)
		}
		rec, err := store.Student(req.StudentID)
		if err != nil {
			return nil, err
		}
		return xml.Marshal(struct {
			XMLName xml.Name `xml:"StudentInfo"`
			backend.StudentRecord
		}{StudentRecord: rec})
	})
}
