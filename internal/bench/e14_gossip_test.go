package bench

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"whisper/internal/chaos"
	"whisper/internal/core"
	"whisper/internal/gossip"
	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

// TestGossipExperiment runs a scaled-down E14 and holds it to the real
// acceptance bounds: the epidemic must beat the flood baseline ≥10× on
// messages and the convergence sweep must be sublinear in fleet size.
func TestGossipExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment skipped in -short mode")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	table, result, err := Gossip(ctx, GossipOptions{
		AdCounts:   []int{1000, 2000},
		PeerCounts: []int{2, 4, 8},
		SweepAds:   400,
		Seed:       1,
	})
	if err != nil {
		t.Fatalf("gossip experiment: %v", err)
	}
	if len(result.Points) != 2 || len(result.Sweep) != 3 {
		t.Fatalf("points = %d, sweep = %d", len(result.Points), len(result.Sweep))
	}
	for _, p := range result.Points {
		if p.GossipMsgs == 0 {
			t.Errorf("%d ads: no gossip traffic measured", p.Ads)
		}
	}
	report := GossipReport(table, result)
	if findings := CheckGossip(report, GossipBounds{}); len(findings) > 0 {
		t.Errorf("gate findings on a healthy run:\n  %s\n%s",
			strings.Join(findings, "\n  "), table.String())
	}
}

// TestCheckGossipFindsViolations feeds the gate doctored reports and
// checks each bound actually bites.
func TestCheckGossipFindsViolations(t *testing.T) {
	healthy := func() *Report {
		r := &Report{Experiment: "gossip", Metrics: map[string]Metric{}}
		for _, ads := range []int{1000, 10000} {
			r.Metrics[fmt.Sprintf("gossip.%d.ratio", ads)] = Metric{Unit: "x", Mean: 11.5}
			r.Metrics[fmt.Sprintf("gossip.%d.convergence", ads)] = Metric{Unit: "ns", Mean: float64(2 * time.Second)}
		}
		r.Metrics["sweep.2.spread"] = Metric{Unit: "ns", Mean: float64(50 * time.Millisecond)}
		r.Metrics["sweep.16.spread"] = Metric{Unit: "ns", Mean: float64(120 * time.Millisecond)}
		r.Metrics["sweep.interval"] = Metric{Unit: "ns", Mean: float64(25 * time.Millisecond)}
		return r
	}
	if findings := CheckGossip(healthy(), GossipBounds{}); len(findings) > 0 {
		t.Fatalf("healthy report produced findings: %v", findings)
	}

	weak := healthy()
	weak.Metrics["gossip.10000.ratio"] = Metric{Unit: "x", Mean: 6}
	if findings := CheckGossip(weak, GossipBounds{}); len(findings) != 1 || !strings.Contains(findings[0], "ratio") {
		t.Errorf("weak ratio not caught: %v", findings)
	}

	slow := healthy()
	slow.Metrics["gossip.1000.convergence"] = Metric{Unit: "ns", Mean: float64(3 * time.Minute)}
	if findings := CheckGossip(slow, GossipBounds{}); len(findings) != 1 || !strings.Contains(findings[0], "convergence") {
		t.Errorf("slow convergence not caught: %v", findings)
	}

	linear := healthy()
	// 16 peers needing 16 rounds is linear dissemination; the log
	// bound allows 2 × (1 + log2 16) = 10 rounds.
	linear.Metrics["sweep.16.spread"] = Metric{Unit: "ns", Mean: float64(400 * time.Millisecond)}
	if findings := CheckGossip(linear, GossipBounds{}); len(findings) != 1 || !strings.Contains(findings[0], "O(log n)") {
		t.Errorf("linear sweep not caught: %v", findings)
	}

	empty := &Report{Experiment: "gossip", Metrics: map[string]Metric{}}
	if findings := CheckGossip(empty, GossipBounds{}); len(findings) == 0 {
		t.Error("empty report passed the gate")
	}
}

// TestGossipSoak drives a sharded deployment through shard crashes,
// restarts and network partitions while publishing and tombstoning
// advertisements, then checks the dissemination invariants: every
// surviving advertisement became visible on all live shards within the
// convergence bound, and no tombstoned advertisement ever resurrected.
// The fault sequence is deterministic per seed (CHAOS_SEEDS selects
// the sweep).
func TestGossipSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("gossip soak skipped in -short mode")
	}
	for _, seed := range chaosSoakSeeds(t) {
		seed := seed
		t.Run("seed="+strconv.FormatInt(seed, 10), func(t *testing.T) {
			gossipSoakOneSeed(t, seed)
		})
	}
}

// soakVisibleEverywhere reports whether the advertisement is present
// (or, with want=false, absent) on every running shard.
func soakVisible(d *core.Deployment, name string, want bool) bool {
	for _, s := range d.Shards() {
		if !s.Running() {
			continue
		}
		visible := len(s.Discovery().GetLocalAdvertisements(p2p.ServiceAdvType, "Name", name)) > 0
		if visible != want {
			return false
		}
	}
	return true
}

func gossipSoakOneSeed(t *testing.T, seed int64) {
	const convergenceBound = 15 * time.Second

	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(seed))
	t.Cleanup(func() { _ = net.Close() })
	d, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      seed,
		Timings: core.Timings{
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
			RendezvousLease:   2 * time.Second,
			GossipInterval:    5 * time.Millisecond,
		},
		Shards:        4,
		ShardReplicas: 2,
	})
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	t.Cleanup(func() { _ = d.Close() })
	addrs := d.ShardAddrs()
	router := p2p.NewShardRouter(addrs, 2)

	ctlTr, err := core.SimulatedTransport(net)("soak-ctl")
	if err != nil {
		t.Fatalf("ctl transport: %v", err)
	}
	ctl := p2p.NewPeer("soak-ctl", p2p.NewIDGen(seed).New(p2p.PeerIDKind), ctlTr)
	ctl.Start()
	t.Cleanup(func() { _ = ctl.Close() })
	client := p2p.NewGossipClient(ctl)

	// Churn: crash/restart dedicated shards and cut shard-to-shard
	// links, deterministically per seed. Shard 0 (the rendezvous)
	// stays up, matching CrashShard's contract. The churn goroutine
	// owns rng; the publish pacing below draws from its own stream so
	// the two never race.
	rng := rand.New(rand.NewSource(seed))
	pubRng := rand.New(rand.NewSource(seed + 7919))
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			victim := 1 + rng.Intn(3)
			if err := d.CrashShard(victim); err == nil {
				time.Sleep(time.Duration(20+rng.Intn(60)) * time.Millisecond)
				if err := d.RestartShard(victim); err != nil {
					t.Errorf("restart shard %d: %v", victim, err)
					return
				}
			}
			a, b := 1+rng.Intn(3), 1+rng.Intn(3)
			if a != b {
				net.Partition(addrs[a], addrs[b])
				time.Sleep(time.Duration(10+rng.Intn(40)) * time.Millisecond)
				net.Heal(addrs[a], addrs[b])
			}
			time.Sleep(time.Duration(10+rng.Intn(30)) * time.Millisecond)
		}
	}()

	check := chaos.NewChecker()
	pub := gossip.NewPublisher("soak-origin", nil)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// publishEntry writes the entry to every replica owner and retries
	// until every owner accepted within one pass. One accepting owner
	// is not durable under churn: a restarted shard rejoins with an
	// empty store, so if the second owner was down at publish time and
	// the lone holder then crashes before its first rumor round, the
	// only copy is gone and no amount of anti-entropy brings it back.
	// Owners flap for tens of milliseconds per churn cycle, so the
	// all-owners pass lands quickly. Each attempt also gets its own
	// short deadline: a shard crashing mid-exchange leaves the query
	// pending, and an unbounded attempt would silently eat the whole
	// retry budget waiting on it.
	publishEntry := func(id, name string, entry gossip.Entry) {
		deadline := time.Now().Add(convergenceBound)
		for {
			var lastErr error
			accepted := 0
			owners := router.AppendOwners(nil, p2p.ServiceAdvType, "action", name)
			for _, owner := range owners {
				attemptCtx, cancelAttempt := context.WithTimeout(ctx, 250*time.Millisecond)
				_, err := client.Publish(attemptCtx, owner, entry)
				cancelAttempt()
				if err == nil {
					accepted++
				} else {
					lastErr = err
				}
			}
			if accepted == len(owners) {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("publish %s: %d/%d owners accepted: %v", id, accepted, len(owners), lastErr)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	publish := func(i int) (string, string) {
		id := fmt.Sprintf("urn:whisper:soak:%d", i)
		name := fmt.Sprintf("soak-%d", i)
		adv := &p2p.ServiceAdvertisement{SvcID: p2p.ID(id), Name: name}
		raw, merr := adv.MarshalAdv()
		if merr != nil {
			t.Fatalf("marshal: %v", merr)
		}
		publishEntry(id, name, pub.Entry(id, raw, time.Hour))
		return id, name
	}

	// Publish under churn, measuring each advertisement's time to full
	// visibility on the live fleet.
	const ads = 20
	names := make([]string, ads)
	for i := 0; i < ads; i++ {
		_, name := publish(i)
		names[i] = name
		start := time.Now()
		for !soakVisible(d, name, true) {
			if time.Since(start) > convergenceBound {
				break
			}
			time.Sleep(2 * time.Millisecond)
		}
		check.RecordConvergence(name, time.Since(start), convergenceBound)
		time.Sleep(time.Duration(5+pubRng.Intn(15)) * time.Millisecond)
	}

	// Tombstone half of them, still under churn.
	dead := map[int]bool{}
	for i := 0; i < ads; i += 2 {
		dead[i] = true
		id := fmt.Sprintf("urn:whisper:soak:%d", i)
		publishEntry(id, names[i], pub.Tombstone(id))
	}

	// Quiesce: stop the churn, let restarts and anti-entropy finish.
	close(stop)
	churn.Wait()
	settle := time.Now().Add(convergenceBound)
	for time.Now().Before(settle) {
		ok := true
		for i, name := range names {
			if !soakVisible(d, name, !dead[i]) {
				ok = false
				break
			}
		}
		if ok {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Final invariants: survivors visible everywhere, tombstoned
	// advertisements gone everywhere — and they STAY gone through
	// further gossip rounds (no resurrection).
	for i, name := range names {
		if !soakVisible(d, name, !dead[i]) {
			if dead[i] {
				check.RecordResurrection(name, "post-quiesce fleet")
			} else {
				check.Violationf("advertisement %s missing from a live shard after quiesce", name)
			}
		}
	}
	time.Sleep(100 * time.Millisecond)
	for i, name := range names {
		if dead[i] && !soakVisible(d, name, false) {
			check.RecordResurrection(name, "late gossip round")
		}
	}

	if got := check.Convergences(); got != ads {
		t.Errorf("convergence measurements = %d, want %d", got, ads)
	}
	if v := check.Violations(); len(v) > 0 {
		t.Errorf("invariant violations:\n  %s", strings.Join(v, "\n  "))
	}
}
