package bench

import (
	"context"
	"encoding/xml"
	"fmt"
	"time"

	"whisper/internal/baseline"
	"whisper/internal/bpeer"
	"whisper/internal/chaos"
	"whisper/internal/core"
	"whisper/internal/metrics"
	"whisper/internal/ontology"
	"whisper/internal/qos"
	"whisper/internal/replog"
	"whisper/internal/simnet"
)

// ExactlyOnceOptions configures experiment E11: exactly-once execution
// of non-idempotent operations under crash–restart churn, comparing
// the replicated operation journal (internal/replog) against plain
// at-least-once retries and the WS-FTM-style client-retry baseline.
type ExactlyOnceOptions struct {
	// Replicas is the group size (default 3).
	Replicas int
	// SteadyOps is the number of steady-state operations used to
	// measure the journal's commit-latency overhead (default 150).
	SteadyOps int
	// OpDelay is the handler's processing time per payment — the
	// window in which a crash loses the reply of an already-executed
	// operation (default 25ms).
	OpDelay time.Duration
	// MTBF/MTTR drive the crash–restart churn (defaults 500ms/125ms,
	// the compressed PR-2 soak schedule: U = 0.2).
	MTBF time.Duration
	MTTR time.Duration
	// Window is the churn measurement window per strategy (default 4s).
	Window time.Duration
	// OpTimeout bounds how long the client re-drives one logical
	// operation before giving up (default 3s).
	OpTimeout time.Duration
	// Seed drives the fault schedule and all other randomness.
	Seed int64
}

func (o *ExactlyOnceOptions) applyDefaults() {
	if o.Replicas <= 0 {
		o.Replicas = 3
	}
	if o.SteadyOps <= 0 {
		o.SteadyOps = 150
	}
	if o.OpDelay <= 0 {
		o.OpDelay = 25 * time.Millisecond
	}
	if o.MTBF <= 0 {
		o.MTBF = 500 * time.Millisecond
	}
	if o.MTTR <= 0 {
		o.MTTR = 125 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 4 * time.Second
	}
	if o.OpTimeout <= 0 {
		o.OpTimeout = 3 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ExactlyOnceResult is the outcome for one strategy.
type ExactlyOnceResult struct {
	Strategy string
	// Commit is the steady-state (churn-free) commit latency.
	Commit *metrics.Histogram
	// Ops counts the logical operations attempted during churn; Acked
	// how many were acknowledged to the client.
	Ops   int
	Acked int
	// Executed/Executions are distinct operations executed and total
	// handler executions (Executions > Executed means duplicates).
	Executed   int
	Executions int
	// Duplicates and LostAcked are the violated exactly-once
	// invariants: operations executed more than once, and operations
	// acked to the client that never executed.
	Duplicates []string
	LostAcked  []string
	Crashes    int64
	Restarts   int64
}

// PaymentSignature is E11's non-idempotent B2B operation (a claim
// payment: executing it twice pays twice).
func PaymentSignature() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptClaimProcessing,
		Inputs:  []string{ontology.ConceptClaimID},
		Outputs: []string{ontology.ConceptClaimStatus},
	}
}

// PaymentRequestXML builds the payment request body.
func PaymentRequestXML(id string) []byte {
	return []byte(`<Payment><ID>` + id + `</ID></Payment>`)
}

func paymentID(payload []byte) (string, error) {
	var req struct {
		XMLName xml.Name `xml:"Payment"`
		ID      string   `xml:"ID"`
	}
	if err := xml.Unmarshal(payload, &req); err != nil {
		return "", fmt.Errorf("bad payment request: %w", err)
	}
	return req.ID, nil
}

// paymentHandler executes a payment: the state change happens up
// front (the funds move), then the receipt takes OpDelay to produce —
// so a crash during processing leaves an executed operation whose
// reply is lost, exactly the case the journal exists for.
func paymentHandler(ledger *chaos.OpLedger, delay time.Duration) bpeer.Handler {
	return bpeer.HandlerFunc(func(ctx context.Context, _ string, payload []byte) ([]byte, error) {
		id, err := paymentID(payload)
		if err != nil {
			return nil, err
		}
		ledger.RecordExec(id)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return []byte("<Receipt><ID>" + id + "</ID></Receipt>"), nil
	})
}

// ExactlyOnce runs E11 and returns the per-strategy comparison table.
func ExactlyOnce(ctx context.Context, opts ExactlyOnceOptions) (*Table, []ExactlyOnceResult, error) {
	opts.applyDefaults()
	var results []ExactlyOnceResult
	for _, strategy := range []string{"replog", "retry", "wsftm"} {
		var (
			res ExactlyOnceResult
			err error
		)
		switch strategy {
		case "wsftm":
			res, err = ExactlyOnceWSFTM(ctx, opts)
		default:
			res, err = ExactlyOnceWhisper(ctx, opts, strategy == "replog")
		}
		if err != nil {
			return nil, nil, fmt.Errorf("bench: exactlyonce %s: %w", strategy, err)
		}
		results = append(results, res)
	}

	t := &Table{
		Title: fmt.Sprintf("Exactly-once execution under churn (MTBF %v, MTTR %v, %v window, seed %d)",
			opts.MTBF, opts.MTTR, opts.Window, opts.Seed),
		Columns: []string{"strategy", "commit p50", "commit p95", "ops", "acked", "executed", "executions", "duplicates", "lost acks", "crashes"},
	}
	for _, r := range results {
		t.AddRow(r.Strategy,
			r.Commit.Percentile(50).String(),
			r.Commit.Percentile(95).String(),
			fmt.Sprintf("%d", r.Ops),
			fmt.Sprintf("%d", r.Acked),
			fmt.Sprintf("%d", r.Executed),
			fmt.Sprintf("%d", r.Executions),
			fmt.Sprintf("%d", len(r.Duplicates)),
			fmt.Sprintf("%d", len(r.LostAcked)),
			fmt.Sprintf("%d", r.Crashes))
	}
	if len(results) >= 2 && results[0].Strategy == "replog" && results[1].Strategy == "retry" {
		jp50, jp95 := results[0].Commit.Percentile(50), results[0].Commit.Percentile(95)
		rp50, rp95 := results[1].Commit.Percentile(50), results[1].Commit.Percentile(95)
		t.AddNote(fmt.Sprintf("journal commit-latency overhead (steady state): p50 %v vs %v (+%v), p95 %v vs %v (+%v)",
			jp50, rp50, jp50-rp50, jp95, rp95, jp95-rp95))
	}
	t.AddNote("replog replicates PREPARE before executing and COMMIT (with the cached reply) before acking, so a retried key replays the receipt instead of paying twice; retry/wsftm re-execute whenever a reply is lost")
	for _, r := range results {
		if len(r.Duplicates) > 0 || len(r.LostAcked) > 0 {
			t.AddNote(fmt.Sprintf("%s violated exactly-once: %d duplicate executions, %d lost acked ops",
				r.Strategy, len(r.Duplicates), len(r.LostAcked)))
		}
	}
	return t, results, nil
}

// ExactlyOnceWhisper measures one Whisper strategy: journaled
// ("replog") or plain at-least-once retries ("retry", the group
// deployed with NoJournal).
func ExactlyOnceWhisper(ctx context.Context, opts ExactlyOnceOptions, journaled bool) (ExactlyOnceResult, error) {
	opts.applyDefaults()
	strategy := "retry"
	if journaled {
		strategy = "replog"
	}
	res := ExactlyOnceResult{Strategy: strategy, Commit: metrics.NewHistogram()}
	ledger := chaos.NewOpLedger()

	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(opts.Seed+1)), simnet.WithSeed(opts.Seed))
	defer func() { _ = net.Close() }()
	dep, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      opts.Seed,
		Timings: core.Timings{
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
			ElectionTimeout:   100 * time.Millisecond,
			LeaseInterval:     500 * time.Millisecond,
			RendezvousLease:   5 * time.Second,
			BindTimeout:       time.Second,
			CallTimeout:       time.Second,
			RetryDelay:        50 * time.Millisecond,
		},
	})
	if err != nil {
		return res, err
	}
	defer func() { _ = dep.Close() }()

	deployCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	group, err := dep.DeployGroup(deployCtx, core.GroupSpec{
		Name:      "PaymentProcessing",
		Signature: PaymentSignature(),
		QoS:       qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		Handler:   paymentHandler(ledger, opts.OpDelay),
		NoJournal: !journaled,
		Count:     opts.Replicas,
	})
	cancel()
	if err != nil {
		return res, err
	}
	prox, err := dep.NewProxy("pay-proxy", core.ProxyOptions{})
	if err != nil {
		return res, err
	}
	defer func() { _ = prox.Close() }()

	invoke := func(id, key string, deadline time.Time) error {
		cctx, cancel := context.WithDeadline(ctx, deadline)
		defer cancel()
		cctx = replog.ContextWithKey(cctx, key)
		_, err := prox.Invoke(cctx, PaymentSignature(), "ProcessPayment", PaymentRequestXML(id))
		return err
	}

	// Steady state: churn-free commit latency (the journal's
	// replication cost shows up here as p50/p95 overhead vs "retry").
	for i := 0; i < opts.SteadyOps; i++ {
		id := fmt.Sprintf("steady-%s-%04d", strategy, i)
		start := time.Now()
		if err := invoke(id, "pay-"+id, start.Add(opts.OpTimeout)); err == nil {
			res.Commit.Observe(time.Since(start))
			ledger.RecordAck(id)
		}
	}

	// Churn: the client re-drives each logical payment under the SAME
	// idempotency key until it is acknowledged or the operation budget
	// runs out, while replicas crash and restart underneath it.
	eng := chaos.New(chaos.Config{Seed: opts.Seed, MTBF: opts.MTBF, MTTR: opts.MTTR}, GroupTargets(group)...)
	runCtx, stopChaos := context.WithCancel(ctx)
	chaosDone := make(chan struct{})
	go func() { eng.Run(runCtx); close(chaosDone) }()

	deadline := time.Now().Add(opts.Window)
	for i := 0; time.Now().Before(deadline); i++ {
		res.Ops++
		id := fmt.Sprintf("churn-%s-%04d", strategy, i)
		opDeadline := time.Now().Add(opts.OpTimeout)
		for {
			if err := invoke(id, "pay-"+id, opDeadline); err == nil {
				ledger.RecordAck(id)
				res.Acked++
				break
			}
			if !time.Now().Before(opDeadline) {
				break // outcome unknown; the client gives up without an ack
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	stopChaos()
	<-chaosDone
	quiesceCtx, qCancel := context.WithTimeout(ctx, 30*time.Second)
	defer qCancel()
	if err := eng.Quiesce(quiesceCtx); err != nil {
		return res, fmt.Errorf("quiesce: %w", err)
	}
	finishExactlyOnce(&res, ledger, eng)
	return res, nil
}

// endpointTarget adapts a baseline FuncEndpoint to a chaos target:
// crashing it flips availability, so an in-flight payment executes but
// its reply is lost.
type endpointTarget struct {
	name string
	ep   *baseline.FuncEndpoint
}

func (t *endpointTarget) Name() string                    { return t.name }
func (t *endpointTarget) Addr() string                    { return t.name }
func (t *endpointTarget) Running() bool                   { return t.ep.Available() }
func (t *endpointTarget) Crash() error                    { t.ep.SetAvailable(false); return nil }
func (t *endpointTarget) Restart(_ context.Context) error { t.ep.SetAvailable(true); return nil }

// ExactlyOnceWSFTM measures the WS-FTM-style baseline: the client
// holds the replica list and retries on failure with no idempotency
// key, so any executed-but-unacknowledged operation is re-executed.
func ExactlyOnceWSFTM(ctx context.Context, opts ExactlyOnceOptions) (ExactlyOnceResult, error) {
	opts.applyDefaults()
	res := ExactlyOnceResult{Strategy: "wsftm", Commit: metrics.NewHistogram()}
	ledger := chaos.NewOpLedger()

	endpoints := make([]*baseline.FuncEndpoint, opts.Replicas)
	targets := make([]chaos.Target, opts.Replicas)
	for i := range endpoints {
		var ep *baseline.FuncEndpoint
		ep = baseline.NewFuncEndpoint(func(ctx context.Context, _ string, payload []byte) ([]byte, error) {
			id, err := paymentID(payload)
			if err != nil {
				return nil, err
			}
			ledger.RecordExec(id)
			if opts.OpDelay > 0 {
				select {
				case <-time.After(opts.OpDelay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			if !ep.Available() {
				// Crashed while processing: the payment executed, the
				// receipt is lost.
				return nil, baseline.ErrEndpointDown
			}
			return []byte("<Receipt><ID>" + id + "</ID></Receipt>"), nil
		})
		endpoints[i] = ep
		targets[i] = &endpointTarget{name: fmt.Sprintf("wsftm-%d", i), ep: ep}
	}
	eps := make([]baseline.Endpoint, len(endpoints))
	for i, ep := range endpoints {
		eps[i] = ep
	}
	client := baseline.NewClientRetry(eps...)

	invoke := func(id string, deadline time.Time) error {
		cctx, cancel := context.WithDeadline(ctx, deadline)
		defer cancel()
		_, err := client.Invoke(cctx, "ProcessPayment", PaymentRequestXML(id))
		return err
	}

	for i := 0; i < opts.SteadyOps; i++ {
		id := fmt.Sprintf("steady-wsftm-%04d", i)
		start := time.Now()
		if err := invoke(id, start.Add(opts.OpTimeout)); err == nil {
			res.Commit.Observe(time.Since(start))
			ledger.RecordAck(id)
		}
	}

	eng := chaos.New(chaos.Config{Seed: opts.Seed, MTBF: opts.MTBF, MTTR: opts.MTTR}, targets...)
	runCtx, stopChaos := context.WithCancel(ctx)
	chaosDone := make(chan struct{})
	go func() { eng.Run(runCtx); close(chaosDone) }()

	deadline := time.Now().Add(opts.Window)
	for i := 0; time.Now().Before(deadline); i++ {
		res.Ops++
		id := fmt.Sprintf("churn-wsftm-%04d", i)
		opDeadline := time.Now().Add(opts.OpTimeout)
		for {
			if err := invoke(id, opDeadline); err == nil {
				ledger.RecordAck(id)
				res.Acked++
				break
			}
			if !time.Now().Before(opDeadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	stopChaos()
	<-chaosDone
	quiesceCtx, qCancel := context.WithTimeout(ctx, 30*time.Second)
	defer qCancel()
	if err := eng.Quiesce(quiesceCtx); err != nil {
		return res, fmt.Errorf("quiesce: %w", err)
	}
	finishExactlyOnce(&res, ledger, eng)
	return res, nil
}

func finishExactlyOnce(res *ExactlyOnceResult, ledger *chaos.OpLedger, eng *chaos.Engine) {
	res.Executed, res.Executions, _ = ledger.Counts()
	res.Duplicates = ledger.Duplicates()
	res.LostAcked = ledger.LostAcked()
	res.Crashes = eng.Counts().Get("crash")
	res.Restarts = eng.Counts().Get("restart")
}
