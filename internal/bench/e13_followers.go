package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/chaos"
	"whisper/internal/core"
	"whisper/internal/metrics"
	"whisper/internal/qos"
	"whisper/internal/replog"
	"whisper/internal/simnet"
)

// FollowersOptions configures experiment E13: read goodput scaling with
// follower read serving. The baseline sends every read through the
// coordinator (the pre-E13 behaviour); the follower configurations mark
// the read operation in ReadOnlyOps so any replica serves it behind the
// read-index barrier and the proxy spreads reads QoS-weighted across
// the group. The headline is the goodput ratio at the full replica
// count: followers.<N>.goodput / coordinator.goodput.
type FollowersOptions struct {
	// ReplicaCounts are the follower-read group sizes swept
	// (default 1, 2, 3).
	ReplicaCounts []int
	// BaselineReplicas is the coordinator-only group size
	// (default: the largest swept count, so the comparison isolates
	// WHERE reads execute, not how many replicas exist).
	BaselineReplicas int
	// Workers is each replica's concurrent backend capacity
	// (default 2).
	Workers int
	// ServiceTime is the per-read backend work (default 5ms).
	ServiceTime time.Duration
	// Window is the measured closed-loop window per point
	// (default 1.5s).
	Window time.Duration
	// Clients is the number of closed-loop reader goroutines; <=0
	// sizes it to saturate the largest configuration
	// (2 × Workers × max replicas).
	Clients int
	// WriteEvery is the background keyed-write interval that keeps the
	// journal advancing while reads run, so the read-index barrier is
	// exercised rather than trivially satisfied (default 20ms).
	WriteEvery time.Duration
	// Seed drives the simulated network and replica selection.
	Seed int64
}

func (o *FollowersOptions) applyDefaults() {
	if len(o.ReplicaCounts) == 0 {
		o.ReplicaCounts = []int{1, 2, 3}
	}
	if o.BaselineReplicas <= 0 {
		o.BaselineReplicas = o.ReplicaCounts[len(o.ReplicaCounts)-1]
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.ServiceTime <= 0 {
		o.ServiceTime = 5 * time.Millisecond
	}
	if o.Window <= 0 {
		o.Window = 1500 * time.Millisecond
	}
	if o.Clients <= 0 {
		maxReplicas := 0
		for _, n := range o.ReplicaCounts {
			if n > maxReplicas {
				maxReplicas = n
			}
		}
		if o.BaselineReplicas > maxReplicas {
			maxReplicas = o.BaselineReplicas
		}
		o.Clients = 2 * o.Workers * maxReplicas
	}
	if o.WriteEvery <= 0 {
		o.WriteEvery = 20 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// FollowersPoint is one configuration's measurement.
type FollowersPoint struct {
	// Config is "coordinator" (reads unmarked, coordinator-served) or
	// "followers" (reads marked, replica-balanced).
	Config string
	// Replicas is the group size.
	Replicas int
	// Reads / Errors / Writes tally the window's traffic.
	Reads  int
	Errors int
	Writes int
	// Goodput is successful reads per second.
	Goodput float64
	// P50/P99 are read latency percentiles.
	P50, P99 time.Duration
	// Spread is how many distinct replicas served reads.
	Spread int
	// Checked / Stale are the staleness-invariant tallies from the
	// chaos checker (zero Checked on the coordinator baseline — the
	// observer only fires on follower-served reads).
	Checked int64
	Stale   int64
}

// FollowersResult is the full E13 sweep.
type FollowersResult struct {
	Baseline FollowersPoint
	Points   []FollowersPoint
	// Scaling is the headline ratio: follower goodput at the largest
	// replica count over coordinator-only goodput.
	Scaling float64
}

// followersCluster is one deployment under test.
type followersCluster struct {
	net     *simnet.Network
	dep     *core.Deployment
	group   *core.Group
	proxy   interface{ Close() error }
	invoke  func(ctx context.Context, op string, payload []byte) ([]byte, error)
	checker *chaos.Checker
}

func (c *followersCluster) Close() {
	_ = c.proxy.Close()
	_ = c.dep.Close()
	_ = c.net.Close()
}

// followerReadHandler models a replica backend with finite concurrency:
// Workers slots, ServiceTime per request, answering "<replica>:<op>"
// so the harness can attribute each read to its serving replica. Read
// handlers run concurrently on follower replicas (see bpeer.Config
// .ReadOnlyOps), which is exactly what the semaphore bounds.
func followerReadHandler(name string, workers int, service time.Duration) bpeer.Handler {
	sem := make(chan struct{}, workers)
	return bpeer.HandlerFunc(func(ctx context.Context, op string, _ []byte) ([]byte, error) {
		select {
		case sem <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-sem }()
		timer := time.NewTimer(service)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return []byte(name + ":" + op), nil
	})
}

// newFollowersCluster deploys one configuration: a journaled group of
// the given size whose "StudentInformation" op is read-only when
// followerReads is set, fronted by a bare proxy whose ReadObserver
// feeds the staleness checker.
func newFollowersCluster(ctx context.Context, opts FollowersOptions, replicas int, followerReads bool) (*followersCluster, error) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(opts.Seed+1)), simnet.WithSeed(opts.Seed))
	dep, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      opts.Seed,
		Timings: core.Timings{
			HeartbeatInterval: 50 * time.Millisecond,
			HeartbeatTimeout:  200 * time.Millisecond,
			ElectionTimeout:   100 * time.Millisecond,
			LeaseInterval:     500 * time.Millisecond,
			RendezvousLease:   5 * time.Second,
			BindTimeout:       time.Second,
			CallTimeout:       2 * time.Second,
			RetryDelay:        25 * time.Millisecond,
		},
	})
	if err != nil {
		_ = net.Close()
		return nil, err
	}
	c := &followersCluster{net: net, dep: dep, checker: chaos.NewChecker()}

	specs := make([]core.ReplicaSpec, replicas)
	for i := range specs {
		name := fmt.Sprintf("students-%d", i)
		specs[i] = core.ReplicaSpec{
			Name:    name,
			Handler: followerReadHandler(name, opts.Workers, opts.ServiceTime),
		}
	}
	var readOps []string
	if followerReads {
		readOps = []string{"StudentInformation"}
	}
	deployCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	c.group, err = dep.DeployGroup(deployCtx, core.GroupSpec{
		Name:        "StudentManagement",
		Signature:   StudentSignature(),
		QoS:         qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		Replicas:    specs,
		ReadOnlyOps: readOps,
	})
	cancel()
	if err != nil {
		_ = dep.Close()
		_ = net.Close()
		return nil, err
	}
	p, err := dep.NewProxy("students-proxy", core.ProxyOptions{
		ReadObserver: c.checker.RecordRead,
	})
	if err != nil {
		_ = dep.Close()
		_ = net.Close()
		return nil, err
	}
	c.proxy = p
	c.invoke = func(ctx context.Context, op string, payload []byte) ([]byte, error) {
		return p.Invoke(ctx, StudentSignature(), op, payload)
	}
	return c, nil
}

// runFollowersPoint measures one configuration: closed-loop readers for
// the window, with keyed background writes advancing the journal.
func runFollowersPoint(ctx context.Context, opts FollowersOptions, replicas int, followerReads bool) (FollowersPoint, error) {
	config := "coordinator"
	if followerReads {
		config = "followers"
	}
	point := FollowersPoint{Config: config, Replicas: replicas}
	c, err := newFollowersCluster(ctx, opts, replicas, followerReads)
	if err != nil {
		return point, err
	}
	defer c.Close()

	// Warm: one keyed write (so the read index is non-zero) and one
	// read per client slot to prime discovery and the read set.
	warmCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	wctx := replog.ContextWithKey(warmCtx, "w-warm")
	if _, err := c.invoke(wctx, "UpdateStudent", []byte("warm")); err != nil {
		cancel()
		return point, fmt.Errorf("warm write: %w", err)
	}
	for i := 0; i < 4; i++ {
		if _, err := c.invoke(warmCtx, "StudentInformation", StudentRequestXML("S0001")); err != nil {
			cancel()
			return point, fmt.Errorf("warm read %d: %w", i, err)
		}
	}
	cancel()

	var (
		mu      sync.Mutex
		reads   int
		errors  int
		writes  int
		served  = make(map[string]int)
		latency = metrics.NewHistogram()
	)
	stop := make(chan struct{})
	var writer sync.WaitGroup
	writer.Add(1)
	go func() {
		defer writer.Done()
		ticker := time.NewTicker(opts.WriteEvery)
		defer ticker.Stop()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			case <-ticker.C:
			}
			callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
			kctx := replog.ContextWithKey(callCtx, fmt.Sprintf("w-%06d", i))
			_, err := c.invoke(kctx, "UpdateStudent", []byte(fmt.Sprintf("w-%06d", i)))
			cancel()
			if err == nil {
				mu.Lock()
				writes++
				mu.Unlock()
			}
		}
	}()

	var readers sync.WaitGroup
	start := time.Now()
	for r := 0; r < opts.Clients; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for time.Since(start) < opts.Window {
				callCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
				t0 := time.Now()
				out, err := c.invoke(callCtx, "StudentInformation", StudentRequestXML("S0001"))
				took := time.Since(t0)
				cancel()
				mu.Lock()
				if err != nil {
					errors++
				} else {
					reads++
					latency.Observe(took)
					served[strings.SplitN(string(out), ":", 2)[0]]++
				}
				mu.Unlock()
			}
		}()
	}
	readers.Wait()
	elapsed := time.Since(start)
	close(stop)
	writer.Wait()

	point.Reads = reads
	point.Errors = errors
	point.Writes = writes
	point.Goodput = float64(reads) / elapsed.Seconds()
	point.P50 = latency.Percentile(50)
	point.P99 = latency.Percentile(99)
	point.Spread = len(served)
	point.Checked = c.checker.Reads()
	if v := c.checker.Violations(); len(v) > 0 {
		point.Stale = int64(len(v))
	}
	return point, nil
}

// Followers runs E13 and returns the sweep table plus the raw points.
func Followers(ctx context.Context, opts FollowersOptions) (*Table, *FollowersResult, error) {
	opts.applyDefaults()
	result := &FollowersResult{}

	baseline, err := runFollowersPoint(ctx, opts, opts.BaselineReplicas, false)
	if err != nil {
		return nil, nil, fmt.Errorf("bench: followers baseline: %w", err)
	}
	result.Baseline = baseline
	for _, n := range opts.ReplicaCounts {
		point, err := runFollowersPoint(ctx, opts, n, true)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: followers %d replicas: %w", n, err)
		}
		result.Points = append(result.Points, point)
	}
	last := result.Points[len(result.Points)-1]
	if baseline.Goodput > 0 {
		result.Scaling = last.Goodput / baseline.Goodput
	}

	t := &Table{
		Title: fmt.Sprintf("Follower read goodput (workers/replica %d, service %v, window %v, %d clients, seed %d)",
			opts.Workers, opts.ServiceTime, opts.Window, opts.Clients, opts.Seed),
		Columns: []string{"config", "replicas", "reads", "errors", "writes", "goodput", "p50", "p99", "spread", "checked", "stale"},
	}
	row := func(p FollowersPoint) {
		t.AddRow(p.Config,
			fmt.Sprintf("%d", p.Replicas),
			fmt.Sprintf("%d", p.Reads),
			fmt.Sprintf("%d", p.Errors),
			fmt.Sprintf("%d", p.Writes),
			fmt.Sprintf("%.0f/s", p.Goodput),
			p.P50.String(),
			p.P99.String(),
			fmt.Sprintf("%d", p.Spread),
			fmt.Sprintf("%d", p.Checked),
			fmt.Sprintf("%d", p.Stale))
	}
	row(baseline)
	for _, p := range result.Points {
		row(p)
	}
	t.AddNote("coordinator = reads unmarked, every read executes on the coordinator; followers = reads marked read-only, any replica serves behind the read-index barrier")
	t.AddNote("scaling at %d replicas: %.2fx coordinator-only goodput (%.0f/s vs %.0f/s)",
		last.Replicas, result.Scaling, last.Goodput, baseline.Goodput)
	t.AddNote("staleness invariant: every follower read carries the read-index it was issued at and the committed seq it observed; stale counts reads where observed < index (must be 0)")
	return t, result, nil
}
