package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// This file implements the overload gate: validating a committed (or
// freshly generated) BENCH_overload.json against E12's acceptance
// bounds. Unlike the ns/op gate, which compares against a baseline
// file, the overload gate checks absolute properties of one report —
// the knee either holds or it does not.

// OverloadBounds are the E12 acceptance thresholds.
type OverloadBounds struct {
	// MinGoodputRatio is the required protected/unprotected goodput
	// ratio at the highest multiplier (default 3).
	MinGoodputRatio float64
	// MaxP99Ratio bounds protected p99 at the highest multiplier
	// relative to protected p99 at the lowest (default 2).
	MaxP99Ratio float64
}

func (b *OverloadBounds) applyDefaults() {
	if b.MinGoodputRatio <= 0 {
		b.MinGoodputRatio = 3
	}
	if b.MaxP99Ratio <= 0 {
		b.MaxP99Ratio = 2
	}
}

// overloadMetric reads one scalar from the report, reporting absence.
func overloadMetric(r *Report, key string) (float64, bool) {
	m, ok := r.Metrics[key]
	return m.Mean, ok
}

// overloadMultipliers extracts the sorted multipliers present for a
// configuration by scanning "<config>.<mult>x.goodput" metric keys.
func overloadMultipliers(r *Report, config string) []float64 {
	var out []float64
	for key := range r.Metrics {
		rest, ok := strings.CutPrefix(key, config+".")
		if !ok {
			continue
		}
		mx, ok := strings.CutSuffix(rest, ".goodput")
		if !ok || !strings.HasSuffix(mx, "x") {
			continue
		}
		m, err := strconv.ParseFloat(strings.TrimSuffix(mx, "x"), 64)
		if err != nil {
			continue
		}
		out = append(out, m)
	}
	sort.Float64s(out)
	return out
}

// CheckOverload validates an E12 report against the acceptance bounds
// and returns one finding per violated property (empty = gate passes):
//
//   - protected goodput at the highest multiplier is at least
//     MinGoodputRatio times the unprotected goodput;
//   - protected p99 of admitted requests at the highest multiplier is
//     at most MaxP99Ratio times protected p99 at the lowest;
//   - no protected point admitted a request that then missed its
//     deadline;
//   - no point recorded a duplicate execution.
func CheckOverload(r *Report, bounds OverloadBounds) []string {
	bounds.applyDefaults()
	var findings []string

	mults := overloadMultipliers(r, "protected")
	if len(mults) < 2 {
		return []string{fmt.Sprintf("report has %d protected multiplier(s), need at least 2 to locate a knee", len(mults))}
	}
	lo, hi := mults[0], mults[len(mults)-1]

	protKey := func(m float64, suffix string) string { return fmt.Sprintf("protected.%gx.%s", m, suffix) }
	unprotKey := func(m float64, suffix string) string { return fmt.Sprintf("unprotected.%gx.%s", m, suffix) }

	protGood, ok1 := overloadMetric(r, protKey(hi, "goodput"))
	unprotGood, ok2 := overloadMetric(r, unprotKey(hi, "goodput"))
	switch {
	case !ok1 || !ok2:
		findings = append(findings, fmt.Sprintf("missing goodput metrics at %gx (protected=%v unprotected=%v)", hi, ok1, ok2))
	case unprotGood > 0 && protGood < bounds.MinGoodputRatio*unprotGood:
		findings = append(findings, fmt.Sprintf(
			"goodput knee too shallow at %gx: protected %.1f/s vs unprotected %.1f/s (%.2fx, need >=%.1fx)",
			hi, protGood, unprotGood, protGood/unprotGood, bounds.MinGoodputRatio))
	}

	p99Hi, ok1 := overloadMetric(r, protKey(hi, "p99"))
	p99Lo, ok2 := overloadMetric(r, protKey(lo, "p99"))
	switch {
	case !ok1 || !ok2:
		findings = append(findings, fmt.Sprintf("missing protected p99 metrics (%gx=%v %gx=%v)", hi, ok1, lo, ok2))
	case p99Lo > 0 && p99Hi > bounds.MaxP99Ratio*p99Lo:
		findings = append(findings, fmt.Sprintf(
			"admitted p99 degrades under overload: %.1fms at %gx vs %.1fms at %gx (%.2fx, allowed <=%.1fx)",
			p99Hi/1e6, hi, p99Lo/1e6, lo, p99Hi/p99Lo, bounds.MaxP99Ratio))
	}

	for _, m := range mults {
		if v, ok := overloadMetric(r, protKey(m, "violations")); ok && v != 0 {
			findings = append(findings, fmt.Sprintf(
				"protected %gx admitted %.0f request(s) that missed their deadline, want 0", m, v))
		}
		for _, key := range []string{protKey(m, "duplicates"), unprotKey(m, "duplicates")} {
			if v, ok := overloadMetric(r, key); ok && v != 0 {
				findings = append(findings, fmt.Sprintf("%s = %.0f duplicate execution(s), want 0", key, v))
			}
		}
	}
	sort.Strings(findings)
	return findings
}

// LoadReport reads a BENCH_<exp>.json report file.
func LoadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bench: read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse report %s: %w", path, err)
	}
	if r.Metrics == nil {
		r.Metrics = make(map[string]Metric)
	}
	return &r, nil
}
