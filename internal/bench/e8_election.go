package bench

import (
	"context"
	"fmt"
	"sync"
	"time"

	"whisper/internal/election"
	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

// ElectionOptions configures experiment E8, the ablation explaining
// the paper's "the time needed to elect a new coordinator is
// considerably high": Bully message count and convergence time as the
// group grows.
type ElectionOptions struct {
	// GroupSizes sweeps the number of participants; nil selects
	// {2, 4, 8, 16}.
	GroupSizes []int
	// Trials averages each point.
	Trials int
	// Seed drives randomness.
	Seed int64
}

func (o *ElectionOptions) applyDefaults() {
	if len(o.GroupSizes) == 0 {
		o.GroupSizes = []int{2, 4, 8, 16}
	}
	if o.Trials <= 0 {
		o.Trials = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ElectionPoint is one sweep point.
type ElectionPoint struct {
	Peers        int
	AvgMessages  float64
	AvgBytes     float64
	AvgConverge  time.Duration
	WorstCaseMsg int64
}

// ElectionCost runs E8: for each group size it wires bare Bully nodes
// on the LAN model, triggers the election from the LOWEST-ranked node
// (the worst case: the full challenge cascade) and counts election
// messages until every node agrees.
func ElectionCost(ctx context.Context, opts ElectionOptions) (*Table, []ElectionPoint, error) {
	opts.applyDefaults()
	var points []ElectionPoint
	for _, n := range opts.GroupSizes {
		point := ElectionPoint{Peers: n}
		for trial := 0; trial < opts.Trials; trial++ {
			msgs, bytes, converge, err := electionTrial(ctx, n, opts.Seed+int64(trial))
			if err != nil {
				return nil, nil, fmt.Errorf("bench: election n=%d: %w", n, err)
			}
			point.AvgMessages += float64(msgs)
			point.AvgBytes += float64(bytes)
			point.AvgConverge += converge
			if msgs > point.WorstCaseMsg {
				point.WorstCaseMsg = msgs
			}
		}
		point.AvgMessages /= float64(opts.Trials)
		point.AvgBytes /= float64(opts.Trials)
		point.AvgConverge /= time.Duration(opts.Trials)
		points = append(points, point)
	}

	t := &Table{
		Title:   fmt.Sprintf("Bully election cost vs. group size (triggered by lowest rank, %d trials)", opts.Trials),
		Columns: []string{"peers", "avg msgs", "worst msgs", "avg convergence"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Peers), fmt.Sprintf("%.1f", p.AvgMessages),
			fmt.Sprintf("%d", p.WorstCaseMsg), p.AvgConverge.String())
	}
	t.AddNote("the lowest-rank trigger cascades challenges through every higher rank: O(n²) messages worst case — the election component of the paper's worst-case RTT")
	return t, points, nil
}

func electionTrial(ctx context.Context, n int, seed int64) (msgs, bytes int64, converge time.Duration, err error) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(seed)), simnet.WithSeed(seed))
	defer func() { _ = net.Close() }()
	gen := p2p.NewIDGen(seed)

	var mu sync.Mutex
	members := make([]election.Member, 0, n)
	membersFn := func() []election.Member {
		mu.Lock()
		defer mu.Unlock()
		return append([]election.Member(nil), members...)
	}

	nodes := make([]*election.Node, 0, n)
	peers := make([]*p2p.Peer, 0, n)
	for i := 0; i < n; i++ {
		addr := fmt.Sprintf("e%02d", i)
		port, perr := net.NewPort(addr)
		if perr != nil {
			return 0, 0, 0, perr
		}
		peer := p2p.NewPeer(addr, gen.New(p2p.PeerIDKind), port)
		node := election.NewNode(peer, int64(i+1), membersFn, election.Config{
			AnswerTimeout: 50 * time.Millisecond,
		})
		peer.Start()
		peers = append(peers, peer)
		nodes = append(nodes, node)
		mu.Lock()
		members = append(members, election.Member{Addr: addr, Rank: int64(i + 1)})
		mu.Unlock()
	}
	defer func() {
		for _, p := range peers {
			_ = p.Close()
		}
	}()

	net.ResetStats()
	start := time.Now()
	nodes[0].Trigger() // lowest rank: full cascade

	ctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	want := peers[n-1].Addr()
	for _, node := range nodes {
		coord, werr := node.WaitForCoordinator(ctx)
		if werr != nil {
			return 0, 0, 0, werr
		}
		if coord != want {
			return 0, 0, 0, fmt.Errorf("node %s elected %s, want %s", node.Addr(), coord, want)
		}
	}
	converge = time.Since(start)
	// Let stragglers drain before reading counters.
	time.Sleep(20 * time.Millisecond)
	stats := net.Stats()
	el := stats.PerProto[p2p.ProtoElection]
	return el.Messages, el.Bytes, converge, nil
}
