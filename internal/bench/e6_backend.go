package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"whisper/internal/backend"
	"whisper/internal/core"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/wsdl"
)

// BackendFailoverOptions configures experiment E6, the paper's §4.1
// scenario: the operational database becomes unavailable and a
// semantically equivalent peer transparently answers from the data
// warehouse.
type BackendFailoverOptions struct {
	// Requests is the number of lookups issued across the incident.
	Requests int
	// OutageAfter is the request index at which the DB goes down.
	OutageAfter int
	// Seed drives randomness.
	Seed int64
}

func (o *BackendFailoverOptions) applyDefaults() {
	if o.Requests <= 0 {
		o.Requests = 60
	}
	if o.OutageAfter <= 0 {
		o.OutageAfter = o.Requests / 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// BackendFailoverResult summarizes the incident.
type BackendFailoverResult struct {
	Succeeded    int
	Failed       int
	FromDB       int
	FromWH       int
	SwitchTime   time.Duration
	FirstWHIndex int
}

// BackendFailover runs E6.
func BackendFailover(ctx context.Context, opts BackendFailoverOptions) (*Table, *BackendFailoverResult, error) {
	opts.applyDefaults()
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(opts.Seed)), simnet.WithSeed(opts.Seed))
	defer func() { _ = net.Close() }()
	dep, err := core.NewDeployment(core.Config{
		Transport: core.SimulatedTransport(net),
		Seed:      opts.Seed,
		Timings: core.Timings{
			HeartbeatInterval: 30 * time.Millisecond,
			HeartbeatTimeout:  120 * time.Millisecond,
			ElectionTimeout:   60 * time.Millisecond,
			LeaseInterval:     300 * time.Millisecond,
			RendezvousLease:   5 * time.Second,
			CallTimeout:       time.Second,
			RetryDelay:        30 * time.Millisecond,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	defer func() { _ = dep.Close() }()

	records := backend.SeedStudents(50, opts.Seed)
	db := backend.NewOperationalDB(records, 0)
	wh := backend.NewDataWarehouse(records, 0)
	failStop := func(err error) bool { return errors.Is(err, backend.ErrUnavailable) }

	ctx, cancel := context.WithTimeout(ctx, 120*time.Second)
	defer cancel()
	_, err = dep.DeployGroup(ctx, core.GroupSpec{
		Name:      "StudentManagement",
		Signature: StudentSignature(),
		QoS:       qos.Profile{Reliability: 0.99, Availability: 0.99},
		Replicas: []core.ReplicaSpec{
			// Lower rank: warehouse standby.
			{Name: "warehouse-peer", Handler: StudentHandler(wh), FailStop: failStop},
			// Higher rank: operational DB, becomes coordinator.
			{Name: "db-peer", Handler: StudentHandler(db), FailStop: failStop},
		},
	})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: deploy: %w", err)
	}
	svc, err := dep.DeployService(wsdl.StudentManagement(), core.ServiceOptions{})
	if err != nil {
		return nil, nil, fmt.Errorf("bench: deploy service: %w", err)
	}

	res := &BackendFailoverResult{FirstWHIndex: -1}
	var outageAt time.Time
	for i := 0; i < opts.Requests; i++ {
		if i == opts.OutageAfter {
			db.SetAvailable(false)
			outageAt = time.Now()
		}
		id := fmt.Sprintf("S%04d", 1+i%50)
		out, err := svc.Invoke(ctx, "StudentInformation", StudentRequestXML(id))
		if err != nil {
			res.Failed++
			continue
		}
		res.Succeeded++
		switch {
		case strings.Contains(string(out), "operational-db"):
			res.FromDB++
		case strings.Contains(string(out), "data-warehouse"):
			res.FromWH++
			if res.FirstWHIndex < 0 {
				res.FirstWHIndex = i
				res.SwitchTime = time.Since(outageAt)
			}
		}
	}

	t := &Table{
		Title:   fmt.Sprintf("Backend failover (§4.1 scenario): DB outage after request %d of %d", opts.OutageAfter, opts.Requests),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("requests succeeded", fmt.Sprintf("%d/%d", res.Succeeded, opts.Requests))
	t.AddRow("answered by operational DB", fmt.Sprintf("%d", res.FromDB))
	t.AddRow("answered by data warehouse", fmt.Sprintf("%d", res.FromWH))
	t.AddRow("db→warehouse switch time", res.SwitchTime.String())
	t.AddRow("first warehouse answer at request", fmt.Sprintf("%d", res.FirstWHIndex))
	t.AddNote("paper §4.1: \"a semantically equivalent peer can automatically and transparently handle the service request by retrieving the same information from a data warehouse\"")
	return t, res, nil
}
