package bench

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"
)

// Figure4Options configures experiment E1 (the paper's Figure 4):
// messages exchanged as the number of b-peers increases.
type Figure4Options struct {
	// PeerCounts are the group sizes to sweep; nil selects 2..9 (the
	// paper's 9-machine testbed minus rendezvous).
	PeerCounts []int
	// Window is the steady-state measurement window per point.
	Window time.Duration
	// Requests is the number of service invocations issued during the
	// window.
	Requests int
	// Settle is the warm-up before counting starts.
	Settle time.Duration
	// Seed drives all randomness.
	Seed int64
}

func (o *Figure4Options) applyDefaults() {
	if len(o.PeerCounts) == 0 {
		o.PeerCounts = []int{2, 3, 4, 5, 6, 7, 8, 9}
	}
	if o.Window <= 0 {
		o.Window = 1500 * time.Millisecond
	}
	if o.Requests <= 0 {
		o.Requests = 50
	}
	if o.Settle <= 0 {
		o.Settle = 400 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Figure4Point is one measured sweep point.
type Figure4Point struct {
	// Peers is the b-peer count.
	Peers int
	// PerProto maps protocol tag to delivered message count.
	PerProto map[string]int64
	// Total is the total delivered message count.
	Total int64
	// Bytes is the total delivered byte count.
	Bytes int64
}

// Figure4 runs E1 and returns the table plus the raw sweep points.
func Figure4(ctx context.Context, opts Figure4Options) (*Table, []Figure4Point, error) {
	opts.applyDefaults()
	var points []Figure4Point
	for _, n := range opts.PeerCounts {
		p, err := figure4Point(ctx, n, opts)
		if err != nil {
			return nil, nil, fmt.Errorf("bench: figure4 at %d peers: %w", n, err)
		}
		points = append(points, p)
	}

	protoSet := map[string]bool{}
	for _, p := range points {
		for tag := range p.PerProto {
			protoSet[tag] = true
		}
	}
	protos := make([]string, 0, len(protoSet))
	for tag := range protoSet {
		protos = append(protos, tag)
	}
	sort.Strings(protos)

	t := &Table{
		Title:   fmt.Sprintf("Figure 4: messages exchanged vs. number of b-peers (window=%v, %d requests)", opts.Window, opts.Requests),
		Columns: append([]string{"b-peers"}, append(protos, "TOTAL", "bytes")...),
	}
	for _, p := range points {
		row := []string{fmt.Sprintf("%d", p.Peers)}
		for _, tag := range protos {
			row = append(row, fmt.Sprintf("%d", p.PerProto[tag]))
		}
		row = append(row, fmt.Sprintf("%d", p.Total), fmt.Sprintf("%d", p.Bytes))
		t.AddRow(row...)
	}
	if r2, slope := linearFit(points); r2 > 0 {
		t.AddNote("linear fit of TOTAL vs peers: slope=%.1f msgs/peer, R²=%.4f (paper: \"predictable linear increase\")", slope, r2)
	}
	return t, points, nil
}

func figure4Point(ctx context.Context, peers int, opts Figure4Options) (Figure4Point, error) {
	c, err := NewCluster(ctx, ClusterOptions{Peers: peers, Seed: opts.Seed})
	if err != nil {
		return Figure4Point{}, err
	}
	defer func() { _ = c.Close() }()

	ctx, cancel := context.WithTimeout(ctx, opts.Window*4+30*time.Second)
	defer cancel()
	// Warm-up: one invocation populates the proxy's caches and
	// bindings, then let background protocols settle.
	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil {
		return Figure4Point{}, err
	}
	time.Sleep(opts.Settle)

	c.Net.ResetStats()
	interval := opts.Window / time.Duration(opts.Requests)
	start := time.Now()
	for i := 0; i < opts.Requests; i++ {
		if _, err := c.Invoke(ctx, c.StudentID(i)); err != nil {
			return Figure4Point{}, err
		}
		// Pace the load across the window so time-driven maintenance
		// traffic (heartbeats, leases) is fully represented.
		next := start.Add(time.Duration(i+1) * interval)
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
	}
	if rest := opts.Window - time.Since(start); rest > 0 {
		time.Sleep(rest)
	}
	stats := c.Net.Stats()

	point := Figure4Point{
		Peers:    peers,
		PerProto: make(map[string]int64, len(stats.PerProto)),
		Total:    stats.Total.Messages,
		Bytes:    stats.Total.Bytes,
	}
	for tag, ps := range stats.PerProto {
		point.PerProto[tag] = ps.Messages
	}
	return point, nil
}

// linearFit computes R² and slope of Total vs Peers.
func linearFit(points []Figure4Point) (r2, slope float64) {
	if len(points) < 2 {
		return 0, 0
	}
	n := float64(len(points))
	var sx, sy, sxx, sxy, syy float64
	for _, p := range points {
		x, y := float64(p.Peers), float64(p.Total)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
		syy += y * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0
	}
	slope = (n*sxy - sx*sy) / den
	// R² from correlation coefficient.
	varY := n*syy - sy*sy
	if varY == 0 {
		return 1, slope
	}
	r := (n*sxy - sx*sy) / (math.Sqrt(den) * math.Sqrt(varY))
	return r * r, slope
}
