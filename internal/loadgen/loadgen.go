// Package loadgen is the open-loop load generator behind experiment
// E12. Unlike the closed-loop clients of E4 (which wait for each
// response before issuing the next request, so their offered load
// collapses along with the system), loadgen draws arrivals from a
// Poisson process at a fixed offered rate: when the system saturates,
// requests keep arriving — exactly the regime that exposes the goodput
// knee overload protection exists for. Client and operation identities
// are drawn from Zipf distributions (a few hot callers dominate, as in
// real B2B traffic).
//
// Determinism: the whole arrival schedule — interarrival gaps, client
// and operation picks — is drawn up front from one seeded generator,
// and every time read goes through the injected simnet.Clock, so a
// seed fully determines the offered workload.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"whisper/internal/loadctl"
	"whisper/internal/metrics"
	"whisper/internal/simnet"
)

// Request is one generated arrival.
type Request struct {
	// Client is the Zipf-drawn caller identity (token-bucket key).
	Client string
	// Op is the Zipf-drawn operation index in [0, Options.Ops).
	Op int
	// Deadline is the request's completion deadline (arrival time plus
	// Options.Timeout); the call context carries it.
	Deadline time.Time
}

// Options shapes the offered load.
type Options struct {
	// Rate is the offered load in requests per second; must be > 0.
	Rate float64
	// Window is how long arrivals are generated; <=0 selects 1s.
	Window time.Duration
	// Clients is the number of distinct caller identities; <=0
	// selects 8.
	Clients int
	// Ops is the number of distinct operation indices; <=0 selects 4.
	Ops int
	// ZipfS / ZipfV parameterize the Zipf skew (s>1, v>=1); zero
	// selects s=1.2, v=1.
	ZipfS, ZipfV float64
	// Timeout is each request's completion budget; <=0 selects 250ms.
	Timeout time.Duration
	// Seed drives the arrival schedule; zero selects 1.
	Seed int64
	// Clock supplies time; nil selects the wall clock.
	Clock simnet.Clock
}

func (o *Options) applyDefaults() {
	if o.Window <= 0 {
		o.Window = time.Second
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if o.Ops <= 0 {
		o.Ops = 4
	}
	if o.ZipfS <= 1 {
		o.ZipfS = 1.2
	}
	if o.ZipfV < 1 {
		o.ZipfV = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 250 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Clock == nil {
		o.Clock = simnet.WallClock{}
	}
}

// Result aggregates one run. Offered = Good + Violations + Shed +
// Errors: every arrival is classified exactly once.
type Result struct {
	// Offered is the number of arrivals dispatched.
	Offered int
	// Good counts successes that completed within their deadline — the
	// numerator of goodput.
	Good int
	// Violations counts successes that completed after their deadline:
	// work the system finished but the caller had already abandoned. A
	// correctly admitted request never lands here.
	Violations int
	// Shed counts loadctl rejections (errors.Is loadctl.ErrRejected).
	Shed int
	// Errors counts every other failure (timeouts, transport, breaker).
	Errors int
	// Latency samples the end-to-end latency of Good requests.
	Latency *metrics.Histogram
	// Elapsed is the wall time from first arrival to last completion.
	Elapsed time.Duration
}

// Goodput is Good per second of elapsed run time.
func (r Result) Goodput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Good) / r.Elapsed.Seconds()
}

// ShedRate is the fraction of offered requests that were shed.
func (r Result) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// arrival is one precomputed schedule entry.
type arrival struct {
	at     time.Duration // offset from run start
	client string
	op     int
}

// schedule draws the full arrival sequence from one seeded generator.
func schedule(opts Options) []arrival {
	rng := rand.New(rand.NewSource(opts.Seed))
	clients := rand.NewZipf(rng, opts.ZipfS, opts.ZipfV, uint64(opts.Clients-1))
	ops := rand.NewZipf(rng, opts.ZipfS, opts.ZipfV, uint64(opts.Ops-1))
	var out []arrival
	at := time.Duration(0)
	for {
		gap := time.Duration(rng.ExpFloat64() / opts.Rate * float64(time.Second))
		at += gap
		if at >= opts.Window {
			return out
		}
		out = append(out, arrival{
			at:     at,
			client: fmt.Sprintf("c%02d", clients.Uint64()),
			op:     int(ops.Uint64()),
		})
	}
}

// Run generates the configured open-loop load against call and blocks
// until every dispatched request completes. call receives a context
// carrying the request's deadline and the client identity (via
// loadctl.ContextWithClient). Cancelling ctx stops new arrivals; the
// requests already in flight still drain.
func Run(ctx context.Context, opts Options, call func(ctx context.Context, req Request) error) Result {
	opts.applyDefaults()
	plan := schedule(opts)
	clock := opts.Clock
	start := clock.Now()

	var (
		wg  sync.WaitGroup
		mu  sync.Mutex
		res = Result{Latency: metrics.NewHistogram()}
	)
	for _, a := range plan {
		if ctx.Err() != nil {
			break
		}
		// Open loop: pace to the schedule, never to completions.
		if wait := a.at - clock.Now().Sub(start); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
			t.Stop()
		}
		if ctx.Err() != nil {
			break
		}
		res.Offered++
		wg.Add(1)
		go func(a arrival) {
			defer wg.Done()
			issued := clock.Now()
			deadline := issued.Add(opts.Timeout)
			cctx, cancel := context.WithDeadline(loadctl.ContextWithClient(ctx, a.client), deadline)
			err := call(cctx, Request{Client: a.client, Op: a.op, Deadline: deadline})
			cancel()
			elapsed := clock.Now().Sub(issued)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil && elapsed <= opts.Timeout:
				res.Good++
				res.Latency.Observe(elapsed)
			case err == nil:
				res.Violations++
			case errors.Is(err, loadctl.ErrRejected):
				res.Shed++
			default:
				res.Errors++
			}
		}(a)
	}
	wg.Wait()
	res.Elapsed = clock.Now().Sub(start)
	return res
}
