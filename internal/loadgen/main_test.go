package loadgen

import (
	"testing"

	"whisper/internal/leakcheck"
)

// TestMain fails the package when generator goroutines (in-flight
// arrivals) outlive the tests that started them.
func TestMain(m *testing.M) { leakcheck.VerifyTestMain(m) }
