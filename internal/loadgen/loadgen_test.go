package loadgen

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/loadctl"
)

func TestScheduleDeterministicFromSeed(t *testing.T) {
	opts := Options{Rate: 500, Window: time.Second, Seed: 42}
	opts.applyDefaults()
	a, b := schedule(opts), schedule(opts)
	if len(a) == 0 {
		t.Fatal("empty schedule")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different lengths: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arrival %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	opts.Seed = 43
	if c := schedule(opts); len(c) == len(a) && func() bool {
		for i := range a {
			if a[i] != c[i] {
				return false
			}
		}
		return true
	}() {
		t.Fatal("different seed produced an identical schedule")
	}
}

func TestScheduleApproximatesRate(t *testing.T) {
	opts := Options{Rate: 1000, Window: 2 * time.Second, Seed: 7}
	opts.applyDefaults()
	n := len(schedule(opts))
	// Poisson(2000): ±10% is ~4.5σ.
	if n < 1800 || n > 2200 {
		t.Fatalf("offered %d arrivals for 1000/s over 2s, want ≈2000", n)
	}
}

func TestZipfSkewsClients(t *testing.T) {
	opts := Options{Rate: 2000, Window: time.Second, Clients: 8, Seed: 3}
	opts.applyDefaults()
	counts := make(map[string]int)
	for _, a := range schedule(opts) {
		counts[a.client]++
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if hot := counts["c00"]; float64(hot) < 0.3*float64(total) {
		t.Fatalf("Zipf head client got %d of %d, want a dominant share", hot, total)
	}
}

func TestRunClassifiesOutcomes(t *testing.T) {
	var n atomic.Int64
	res := Run(context.Background(), Options{Rate: 400, Window: 250 * time.Millisecond, Timeout: 100 * time.Millisecond, Seed: 5},
		func(ctx context.Context, req Request) error {
			if loadctl.ClientFromContext(ctx) != req.Client {
				t.Error("call context must carry the client identity")
			}
			if _, ok := ctx.Deadline(); !ok {
				t.Error("call context must carry the deadline")
			}
			switch n.Add(1) % 3 {
			case 0:
				return &loadctl.RejectionError{Reason: loadctl.ReasonRate, Client: req.Client}
			case 1:
				return errors.New("transport down")
			default:
				return nil
			}
		})
	if res.Offered == 0 {
		t.Fatal("no arrivals dispatched")
	}
	if res.Good+res.Violations+res.Shed+res.Errors != res.Offered {
		t.Fatalf("classification must partition offered: %+v", res)
	}
	if res.Shed == 0 || res.Errors == 0 || res.Good == 0 {
		t.Fatalf("all three outcome classes expected: %+v", res)
	}
	if res.Latency.Count() != res.Good {
		t.Fatalf("latency samples %d != good %d", res.Latency.Count(), res.Good)
	}
	if res.Goodput() <= 0 || res.ShedRate() <= 0 {
		t.Fatalf("derived rates: goodput=%v shed=%v", res.Goodput(), res.ShedRate())
	}
}

func TestRunOpenLoopDoesNotWaitForCompletions(t *testing.T) {
	// A closed-loop client at concurrency 1 against a 50ms service
	// could issue at most ~window/50ms requests; the open loop must
	// keep offering at the scheduled rate regardless.
	var mu sync.Mutex
	inflightMax, inflight := 0, 0
	res := Run(context.Background(), Options{Rate: 200, Window: 300 * time.Millisecond, Timeout: time.Second, Seed: 11},
		func(ctx context.Context, req Request) error {
			mu.Lock()
			inflight++
			if inflight > inflightMax {
				inflightMax = inflight
			}
			mu.Unlock()
			timer := time.NewTimer(50 * time.Millisecond)
			defer timer.Stop()
			select {
			case <-timer.C:
			case <-ctx.Done():
			}
			mu.Lock()
			inflight--
			mu.Unlock()
			return nil
		})
	if res.Offered < 30 {
		t.Fatalf("offered only %d requests at 200/s over 300ms", res.Offered)
	}
	if inflightMax < 2 {
		t.Fatalf("open loop should overlap requests, max inflight was %d", inflightMax)
	}
}

func TestRunStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	done := make(chan Result, 1)
	go func() {
		done <- Run(ctx, Options{Rate: 50, Window: time.Hour, Seed: 9}, func(ctx context.Context, req Request) error {
			if calls.Add(1) == 3 {
				cancel()
			}
			return nil
		})
	}()
	select {
	case res := <-done:
		if res.Offered == 0 {
			t.Fatal("expected some arrivals before cancel")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not stop after cancel")
	}
}

func TestRequestOpsWithinRange(t *testing.T) {
	opts := Options{Rate: 1000, Window: 500 * time.Millisecond, Ops: 4, Seed: 13}
	opts.applyDefaults()
	for _, a := range schedule(opts) {
		if a.op < 0 || a.op >= opts.Ops {
			t.Fatalf("op %d out of range [0,%d)", a.op, opts.Ops)
		}
		if a.client == "" {
			t.Fatal("empty client")
		}
		if a.client != fmt.Sprintf("c%02d", mustClientIndex(t, a.client)) {
			t.Fatalf("client name %q not canonical", a.client)
		}
	}
}

func mustClientIndex(t *testing.T, name string) int {
	t.Helper()
	var idx int
	if _, err := fmt.Sscanf(name, "c%02d", &idx); err != nil {
		t.Fatalf("client %q: %v", name, err)
	}
	return idx
}
