// Package election implements the Bully leader-election algorithm the
// paper's b-peers run (§4.2): every replica is active, one coordinator
// serves requests, and when it fails the remaining peers elect the
// highest-ranked live peer with election / answer / coordinator
// messages. The election duration is one of the two components of the
// paper's worst-case RTT (§5), so the timeouts are configurable and
// the message flow is faithful to the classic algorithm.
package election

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"time"

	"whisper/internal/p2p"
	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// Member is one participant in the election group.
type Member struct {
	// Addr is the member's transport address.
	Addr string
	// Rank is the bully priority; the highest live rank wins.
	Rank int64
}

// MembersFunc supplies the current group view (including this node).
// The node queries it at election time, so membership can be dynamic
// (backed by the rendezvous in Whisper).
type MembersFunc func() []Member

// Config tunes the election timeouts.
type Config struct {
	// AnswerTimeout is how long a challenger waits for an answer from
	// a higher-ranked peer before declaring itself coordinator.
	AnswerTimeout time.Duration
	// CoordTimeout is how long a node that received an answer waits
	// for the coordinator announcement before restarting the election.
	CoordTimeout time.Duration
	// OnCoordinator is invoked (outside locks) whenever the known
	// coordinator changes. Optional.
	OnCoordinator func(addr string)
	// Barrier, when set, runs after this node wins an election but
	// before it announces (or acts as) coordinator. Whisper uses it as
	// the journal catch-up barrier: the new coordinator state-transfers
	// the replicated operation journal from the surviving members so it
	// serves no request before reaching the highest committed sequence.
	// Returning an error abandons the victory and re-triggers the
	// election. Optional.
	Barrier func() error
}

// Message kinds of the election protocol.
const (
	kindElection    = "election"
	kindAnswer      = "answer"
	kindCoordinator = "coordinator"
)

// Message headers.
const (
	hdrRank = "rank"
)

// Node is one Bully participant bound to a peer.
type Node struct {
	peer    *p2p.Peer
	rank    int64
	members MembersFunc
	cfg     Config

	// wg tracks in-flight runElection goroutines so Close can join
	// them; an election left running across a crash–restart would
	// otherwise race with the restarted replica's re-assembly.
	wg sync.WaitGroup

	mu          sync.Mutex
	coordinator string
	coordRank   int64
	electing    bool
	retrigger   bool
	answerCh    chan struct{}
	changed     chan struct{}
	closed      bool
}

// NewNode attaches a Bully participant to the peer. rank must be
// unique within the group (Whisper derives it from the peer index).
func NewNode(peer *p2p.Peer, rank int64, members MembersFunc, cfg Config) *Node {
	if cfg.AnswerTimeout <= 0 {
		cfg.AnswerTimeout = 200 * time.Millisecond
	}
	if cfg.CoordTimeout <= 0 {
		cfg.CoordTimeout = 2 * cfg.AnswerTimeout
	}
	n := &Node{
		peer:    peer,
		rank:    rank,
		members: members,
		cfg:     cfg,
		changed: make(chan struct{}),
	}
	peer.Handle(p2p.ProtoElection, n.handleMessage)
	return n
}

// Rank returns this node's bully priority.
func (n *Node) Rank() int64 { return n.rank }

// Addr returns this node's transport address.
func (n *Node) Addr() string { return n.peer.Addr() }

// Coordinator returns the currently known coordinator address, or ""
// when unknown (mid-election or before the first election).
func (n *Node) Coordinator() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coordinator
}

// IsCoordinator reports whether this node believes it is coordinator.
func (n *Node) IsCoordinator() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.coordinator == n.peer.Addr()
}

// Close detaches the node and waits for in-flight elections to unwind
// (every wait inside a round is time-bounded, so this returns
// promptly). Joining them matters on crash–restart: a straggler
// election still reading the member view would race with the restarted
// replica rebuilding its services.
func (n *Node) Close() {
	n.mu.Lock()
	n.closed = true
	n.mu.Unlock()
	n.wg.Wait()
}

// Resign relinquishes coordinatorship on graceful shutdown: the
// departing coordinator clears its local state and challenges every
// other member with the lowest possible rank, so each live member
// answers and starts its own election immediately instead of waiting
// for heartbeat failure detection to notice the departure. Calling
// Resign on a non-coordinator is a no-op.
func (n *Node) Resign() {
	self := n.peer.Addr()
	n.mu.Lock()
	wasCoord := n.coordinator == self
	if wasCoord {
		n.coordinator = ""
		n.coordRank = 0
	}
	n.mu.Unlock()
	if !wasCoord {
		return
	}
	for _, m := range n.members() {
		if m.Addr == self {
			continue
		}
		_ = n.peer.Send(m.Addr, simnet.Message{
			Proto:   p2p.ProtoElection,
			Kind:    kindElection,
			Headers: map[string]string{hdrRank: strconv.FormatInt(math.MinInt64, 10)},
		})
	}
}

// InvalidateCoordinator clears the known coordinator (called when the
// failure detector reports it dead) without starting an election.
func (n *Node) InvalidateCoordinator() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.coordinator = ""
	n.coordRank = 0
}

// Trigger starts an election unless one is already in progress. A
// trigger that arrives mid-election is not dropped: the election
// re-runs once it finishes, so a challenge racing with a concluding
// election (or with InvalidateCoordinator) cannot be lost.
func (n *Node) Trigger() {
	n.mu.Lock()
	if n.electing || n.closed {
		if n.electing {
			n.retrigger = true
		}
		n.mu.Unlock()
		return
	}
	n.electing = true
	n.answerCh = make(chan struct{}, 1)
	// Added under the lock: a concurrent Close either sees electing
	// already counted or has already flipped closed above.
	n.wg.Add(1)
	n.mu.Unlock()
	go func() {
		defer n.wg.Done()
		n.runElection()
	}()
}

// WaitForCoordinator blocks until a coordinator is known or ctx ends.
func (n *Node) WaitForCoordinator(ctx context.Context) (string, error) {
	for {
		n.mu.Lock()
		coord := n.coordinator
		ch := n.changed
		n.mu.Unlock()
		if coord != "" {
			return coord, nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return "", fmt.Errorf("election: wait for coordinator: %w", ctx.Err())
		}
	}
}

// runElection executes the Bully protocol until a coordinator is
// established or the node closes. Each run is recorded as an
// "election.run" root span (when the peer carries a tracer), so bench
// traces can show election convergence alongside the proxy's
// election-wait phases.
func (n *Node) runElection() {
	span := n.peer.Tracer().StartRemote(trace.SpanContext{}, "election.run")
	span.SetAttr("node", n.peer.Addr())
	span.SetAttr("rank", strconv.FormatInt(n.rank, 10))
	defer func() {
		n.mu.Lock()
		n.electing = false
		n.answerCh = nil
		again := n.retrigger && !n.closed
		n.retrigger = false
		coord := n.coordinator
		n.mu.Unlock()
		span.SetAttr("coordinator", coord)
		span.End()
		if again {
			n.Trigger()
		}
	}()

	const maxAttempts = 10
	for attempt := 0; attempt < maxAttempts; attempt++ {
		n.mu.Lock()
		if n.closed {
			n.mu.Unlock()
			return
		}
		answerCh := n.answerCh
		n.mu.Unlock()

		members := n.members()
		// A node that is no longer in the member view (it resigned or
		// was declared dead) must not crown itself from an election
		// that was already in flight; the survivors elect among
		// themselves.
		if !memberOf(members, n.peer.Addr()) {
			return
		}
		higher := membersAbove(members, n.rank)
		if len(higher) == 0 {
			n.becomeCoordinator(members)
			return
		}
		// Challenge every higher-ranked member.
		for _, m := range higher {
			_ = n.peer.Send(m.Addr, simnet.Message{
				Proto:   p2p.ProtoElection,
				Kind:    kindElection,
				Headers: map[string]string{hdrRank: strconv.FormatInt(n.rank, 10)},
			})
		}
		select {
		case <-answerCh:
			// A higher-ranked peer is alive; wait for its coordinator
			// announcement.
			if n.waitForAnnouncement(n.cfg.CoordTimeout) {
				return
			}
			// Announcement never came (the higher peer may have died
			// mid-election); retry.
		case <-time.After(n.cfg.AnswerTimeout):
			// Nobody higher answered: this node wins.
			n.becomeCoordinator(members)
			return
		}
	}
}

// waitForAnnouncement waits for a coordinator to be set.
func (n *Node) waitForAnnouncement(timeout time.Duration) bool {
	deadline := time.After(timeout)
	for {
		n.mu.Lock()
		coord := n.coordinator
		ch := n.changed
		n.mu.Unlock()
		if coord != "" {
			return true
		}
		select {
		case <-ch:
		case <-deadline:
			return false
		}
	}
}

func (n *Node) becomeCoordinator(members []Member) {
	self := n.peer.Addr()
	n.mu.Lock()
	if n.closed {
		// A closed node must not broadcast coordinatorship from an
		// election that was still in flight when it shut down.
		n.mu.Unlock()
		return
	}
	n.mu.Unlock()
	if n.cfg.Barrier != nil {
		if err := n.cfg.Barrier(); err != nil {
			// The catch-up failed: do not serve, run the election
			// again (the deferred retrigger in runElection picks this
			// up once the current round unwinds).
			n.mu.Lock()
			n.retrigger = true
			n.mu.Unlock()
			return
		}
	}
	n.setCoordinator(self, n.rank)
	for _, m := range members {
		if m.Addr == self {
			continue
		}
		_ = n.peer.Send(m.Addr, simnet.Message{
			Proto:   p2p.ProtoElection,
			Kind:    kindCoordinator,
			Headers: map[string]string{hdrRank: strconv.FormatInt(n.rank, 10)},
		})
	}
}

func (n *Node) setCoordinator(addr string, rank int64) {
	n.mu.Lock()
	if n.closed || (n.coordinator == addr && n.coordRank == rank) {
		n.mu.Unlock()
		return
	}
	n.coordinator = addr
	n.coordRank = rank
	close(n.changed)
	n.changed = make(chan struct{})
	cb := n.cfg.OnCoordinator
	n.mu.Unlock()
	if cb != nil {
		cb(addr)
	}
}

func (n *Node) handleMessage(msg simnet.Message) {
	rank, _ := strconv.ParseInt(msg.Header(hdrRank), 10, 64)
	switch msg.Kind {
	case kindElection:
		// A lower-ranked peer is holding an election: answer it and
		// run our own (we outrank it).
		if rank < n.rank {
			// If the challenger is the coordinator we currently know,
			// it is abdicating (Resign sends the lowest possible
			// rank): forget it, or elections still in flight would
			// mistake the stale value for a fresh announcement and
			// conclude without ever electing a successor.
			n.mu.Lock()
			if n.coordinator == msg.Src {
				n.coordinator = ""
				n.coordRank = 0
			}
			n.mu.Unlock()
			_ = n.peer.Send(msg.Src, simnet.Message{
				Proto:   p2p.ProtoElection,
				Kind:    kindAnswer,
				Headers: map[string]string{hdrRank: strconv.FormatInt(n.rank, 10)},
			})
			n.Trigger()
		}
	case kindAnswer:
		n.mu.Lock()
		ch := n.answerCh
		n.mu.Unlock()
		if ch != nil {
			select {
			case ch <- struct{}{}:
			default:
			}
		}
	case kindCoordinator:
		// Accept announcements from peers that outrank us and are
		// still part of the member view; a stale announcement — lower
		// rank, or a sender that already crashed or resigned out of
		// the group — is challenged with a new election instead, so a
		// late broadcast from a dead coordinator cannot wedge the
		// survivors on it.
		if rank >= n.rank && memberOf(n.members(), msg.Src) {
			n.setCoordinator(msg.Src, rank)
			return
		}
		n.Trigger()
	}
}

func memberOf(members []Member, addr string) bool {
	for _, m := range members {
		if m.Addr == addr {
			return true
		}
	}
	return false
}

func membersAbove(members []Member, rank int64) []Member {
	var out []Member
	for _, m := range members {
		if m.Rank > rank {
			out = append(out, m)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rank > out[j].Rank })
	return out
}
