package election

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

// TestBullyAlwaysElectsHighestLiveRankProperty randomizes group size
// and the triggering node, and checks the invariant the algorithm
// guarantees: every live node converges on the highest live rank.
func TestBullyAlwaysElectsHighestLiveRankProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property macro test")
	}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(trial + 1)))
		n := 2 + rng.Intn(6)
		trigger := rng.Intn(n)
		t.Run(fmt.Sprintf("n=%d trigger=%d", n, trigger), func(t *testing.T) {
			c := newCluster(t, n)
			c.nodes[trigger].Trigger()
			want := c.peers[n-1].Addr()
			for i, node := range c.nodes {
				ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
				coord, err := node.WaitForCoordinator(ctx)
				cancel()
				if err != nil {
					t.Fatalf("node %d: %v", i, err)
				}
				if coord != want {
					t.Fatalf("node %d elected %s, want %s", i, coord, want)
				}
			}
		})
	}
}

// TestBullyUnderLANLatency runs the election over the calibrated LAN
// model rather than zero latency, verifying timing assumptions hold
// with realistic delays.
func TestBullyUnderLANLatency(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.NewLANModel(1)), simnet.WithSeed(1))
	t.Cleanup(func() { _ = net.Close() })
	gen := p2p.NewIDGen(1)
	cfg := Config{AnswerTimeout: 50 * time.Millisecond, CoordTimeout: 150 * time.Millisecond}

	var members []Member
	var nodes []*Node
	for i := 0; i < 5; i++ {
		addr := fmt.Sprintf("lan%d", i)
		port, err := net.NewPort(addr)
		if err != nil {
			t.Fatalf("port: %v", err)
		}
		peer := p2p.NewPeer(addr, gen.New(p2p.PeerIDKind), port)
		t.Cleanup(func() { _ = peer.Close() })
		members = append(members, Member{Addr: addr, Rank: int64(i + 1)})
		node := NewNode(peer, int64(i+1), func() []Member { return members }, cfg)
		nodes = append(nodes, node)
		peer.Start()
	}
	start := time.Now()
	nodes[0].Trigger()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, node := range nodes {
		coord, err := node.WaitForCoordinator(ctx)
		if err != nil {
			t.Fatalf("wait: %v", err)
		}
		if coord != "lan4" {
			t.Fatalf("coordinator = %s, want lan4", coord)
		}
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("convergence took %v", elapsed)
	}
}
