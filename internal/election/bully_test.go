package election

import (
	"context"
	"sync"
	"testing"
	"time"

	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

// cluster wires n Bully nodes on a zero-latency simulated network.
type cluster struct {
	net   *simnet.Network
	peers []*p2p.Peer
	nodes []*Node

	mu    sync.Mutex
	alive map[string]bool
}

func newCluster(t *testing.T, n int) *cluster {
	t.Helper()
	c := &cluster{
		net:   simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1)),
		alive: make(map[string]bool),
	}
	t.Cleanup(func() { _ = c.net.Close() })
	gen := p2p.NewIDGen(1)
	cfg := Config{AnswerTimeout: 50 * time.Millisecond, CoordTimeout: 150 * time.Millisecond}
	for i := 0; i < n; i++ {
		addr := string(rune('a' + i))
		port, err := c.net.NewPort(addr)
		if err != nil {
			t.Fatalf("port: %v", err)
		}
		peer := p2p.NewPeer(addr, gen.New(p2p.PeerIDKind), port)
		t.Cleanup(func() { _ = peer.Close() })
		node := NewNode(peer, int64(i+1), c.members, cfg)
		c.peers = append(c.peers, peer)
		c.nodes = append(c.nodes, node)
		c.alive[addr] = true
		peer.Start()
	}
	return c
}

// members returns the live member view.
func (c *cluster) members() []Member {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Member
	for i, p := range c.peers {
		if c.alive[p.Name()] {
			out = append(out, Member{Addr: p.Addr(), Rank: int64(i + 1)})
		}
	}
	return out
}

func (c *cluster) kill(t *testing.T, i int) {
	t.Helper()
	c.mu.Lock()
	c.alive[c.peers[i].Name()] = false
	c.mu.Unlock()
	c.nodes[i].Close()
	if err := c.peers[i].Close(); err != nil {
		t.Fatalf("close peer %d: %v", i, err)
	}
}

func waitCoord(t *testing.T, n *Node, d time.Duration) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	coord, err := n.WaitForCoordinator(ctx)
	if err != nil {
		t.Fatalf("node %s: %v", n.Addr(), err)
	}
	return coord
}

func TestBullyElectsHighestRank(t *testing.T) {
	c := newCluster(t, 4)
	c.nodes[0].Trigger() // lowest rank starts the election

	want := c.peers[3].Addr() // rank 4 must win
	for i, n := range c.nodes {
		if got := waitCoord(t, n, 3*time.Second); got != want {
			t.Errorf("node %d coordinator = %s, want %s", i, got, want)
		}
	}
	if !c.nodes[3].IsCoordinator() {
		t.Error("highest-ranked node does not believe it is coordinator")
	}
	if c.nodes[0].IsCoordinator() {
		t.Error("lowest-ranked node believes it is coordinator")
	}
}

func TestBullySingleNode(t *testing.T) {
	c := newCluster(t, 1)
	c.nodes[0].Trigger()
	if got := waitCoord(t, c.nodes[0], time.Second); got != c.peers[0].Addr() {
		t.Errorf("coordinator = %s, want self", got)
	}
}

func TestBullyReElectionAfterCoordinatorCrash(t *testing.T) {
	c := newCluster(t, 3)
	c.nodes[0].Trigger()
	first := waitCoord(t, c.nodes[0], 3*time.Second)
	if first != c.peers[2].Addr() {
		t.Fatalf("first coordinator = %s, want %s", first, c.peers[2].Addr())
	}

	// Crash the coordinator; survivors must elect rank 2.
	c.kill(t, 2)
	for _, n := range c.nodes[:2] {
		n.InvalidateCoordinator()
	}
	c.nodes[0].Trigger()

	want := c.peers[1].Addr()
	for i, n := range c.nodes[:2] {
		if got := waitCoord(t, n, 3*time.Second); got != want {
			t.Errorf("node %d new coordinator = %s, want %s", i, got, want)
		}
	}
}

func TestBullyCascadingFailures(t *testing.T) {
	c := newCluster(t, 4)
	c.nodes[0].Trigger()
	waitCoord(t, c.nodes[0], 3*time.Second)

	// Kill ranks 4 then 3; rank 2 must end up coordinator.
	c.kill(t, 3)
	c.kill(t, 2)
	for _, n := range c.nodes[:2] {
		n.InvalidateCoordinator()
	}
	c.nodes[0].Trigger()

	want := c.peers[1].Addr()
	for i, n := range c.nodes[:2] {
		if got := waitCoord(t, n, 5*time.Second); got != want {
			t.Errorf("node %d coordinator = %s, want %s", i, got, want)
		}
	}
}

func TestBullyConcurrentTriggers(t *testing.T) {
	c := newCluster(t, 5)
	// Everyone triggers at once.
	for _, n := range c.nodes {
		n.Trigger()
	}
	want := c.peers[4].Addr()
	for i, n := range c.nodes {
		if got := waitCoord(t, n, 5*time.Second); got != want {
			t.Errorf("node %d coordinator = %s, want %s", i, got, want)
		}
	}
}

func TestBullyCoordinatorChangeCallback(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	t.Cleanup(func() { _ = net.Close() })
	gen := p2p.NewIDGen(1)
	port, err := net.NewPort("solo")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	peer := p2p.NewPeer("solo", gen.New(p2p.PeerIDKind), port)
	t.Cleanup(func() { _ = peer.Close() })
	peer.Start()

	got := make(chan string, 1)
	n := NewNode(peer, 1,
		func() []Member { return []Member{{Addr: "solo", Rank: 1}} },
		Config{AnswerTimeout: 20 * time.Millisecond, OnCoordinator: func(a string) { got <- a }})
	n.Trigger()
	select {
	case addr := <-got:
		if addr != "solo" {
			t.Errorf("callback addr = %s", addr)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnCoordinator never invoked")
	}
}

func TestBullyTriggerIsIdempotentWhileElecting(t *testing.T) {
	c := newCluster(t, 2)
	for i := 0; i < 10; i++ {
		c.nodes[0].Trigger()
	}
	want := c.peers[1].Addr()
	if got := waitCoord(t, c.nodes[0], 3*time.Second); got != want {
		t.Errorf("coordinator = %s, want %s", got, want)
	}
}

func TestBullyInvalidateCoordinator(t *testing.T) {
	c := newCluster(t, 2)
	c.nodes[0].Trigger()
	waitCoord(t, c.nodes[0], 3*time.Second)
	c.nodes[0].InvalidateCoordinator()
	if c.nodes[0].Coordinator() != "" {
		t.Error("coordinator not cleared")
	}
}

func TestBullyClosedNodeDoesNotElect(t *testing.T) {
	c := newCluster(t, 1)
	c.nodes[0].Close()
	c.nodes[0].Trigger()
	time.Sleep(100 * time.Millisecond)
	if c.nodes[0].Coordinator() != "" {
		t.Error("closed node became coordinator")
	}
}

func TestBullyResignTriggersImmediateHandOff(t *testing.T) {
	c := newCluster(t, 3)
	c.nodes[0].Trigger()
	first := waitCoord(t, c.nodes[0], 3*time.Second)
	if first != c.peers[2].Addr() {
		t.Fatalf("first coordinator = %s, want %s", first, c.peers[2].Addr())
	}

	// The coordinator resigns gracefully: it drops out of the member
	// view and challenges the survivors, so a new election starts
	// without any failure detection.
	c.mu.Lock()
	c.alive[c.peers[2].Name()] = false
	c.mu.Unlock()
	c.nodes[2].Resign()

	want := c.peers[1].Addr()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if c.nodes[0].Coordinator() == want && c.nodes[1].Coordinator() == want {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i, n := range c.nodes[:2] {
		if got := n.Coordinator(); got != want {
			t.Errorf("node %d coordinator = %s after resignation, want %s", i, got, want)
		}
	}
	if got := c.nodes[2].Coordinator(); got == c.peers[2].Addr() {
		t.Error("resigned node still believes it is coordinator")
	}
}

func TestBullyResignOnNonCoordinatorIsNoOp(t *testing.T) {
	c := newCluster(t, 2)
	c.nodes[0].Trigger()
	want := waitCoord(t, c.nodes[0], 3*time.Second)

	c.nodes[0].Resign() // rank 1 is not the coordinator
	time.Sleep(100 * time.Millisecond)
	if got := c.nodes[0].Coordinator(); got != want {
		t.Errorf("coordinator = %s after no-op resign, want %s", got, want)
	}
	if got := c.nodes[1].Coordinator(); got != want {
		t.Errorf("node 1 coordinator = %s after no-op resign, want %s", got, want)
	}
}

// TestBullyBarrierRunsBeforeCoordinatorship verifies the catch-up
// barrier contract: a winning node runs Barrier before any node (itself
// included) observes it as coordinator, and a failing barrier abandons
// the victory and re-runs the election until the barrier succeeds.
func TestBullyBarrierRunsBeforeCoordinatorship(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()), simnet.WithSeed(1))
	t.Cleanup(func() { _ = net.Close() })
	gen := p2p.NewIDGen(1)
	port, err := net.NewPort("solo")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	peer := p2p.NewPeer("solo", gen.New(p2p.PeerIDKind), port)
	t.Cleanup(func() { _ = peer.Close() })

	var mu sync.Mutex
	calls := 0
	var coordDuringBarrier string
	var node *Node
	barrier := func() error {
		mu.Lock()
		defer mu.Unlock()
		calls++
		coordDuringBarrier = node.Coordinator()
		if calls == 1 {
			return context.DeadlineExceeded // first catch-up attempt fails
		}
		return nil
	}
	node = NewNode(peer, 1, func() []Member {
		return []Member{{Addr: peer.Addr(), Rank: 1}}
	}, Config{AnswerTimeout: 20 * time.Millisecond, Barrier: barrier})
	t.Cleanup(node.Close)
	peer.Start()

	node.Trigger()
	if got := waitCoord(t, node, 3*time.Second); got != peer.Addr() {
		t.Fatalf("coordinator = %s, want self", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if calls < 2 {
		t.Fatalf("barrier ran %d time(s), want the failed attempt re-triggered", calls)
	}
	if coordDuringBarrier != "" {
		t.Fatalf("coordinator already %q while barrier ran, want barrier before coordinatorship", coordDuringBarrier)
	}
}
