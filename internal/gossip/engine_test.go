package gossip

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"whisper/internal/simnet"
)

// mesh is an in-memory transport wiring engines directly together,
// with per-link partitions and a message counter.
type mesh struct {
	mu      sync.Mutex
	nodes   map[string]*Engine
	cut     map[[2]string]bool
	msgs    int64
	dropAll map[string]bool
}

func newMesh() *mesh {
	return &mesh{
		nodes:   make(map[string]*Engine),
		cut:     make(map[[2]string]bool),
		dropAll: make(map[string]bool),
	}
}

func (m *mesh) partition(a, b string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cut[[2]string{a, b}] = true
	m.cut[[2]string{b, a}] = true
}

func (m *mesh) heal(a, b string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.cut, [2]string{a, b})
	delete(m.cut, [2]string{b, a})
}

func (m *mesh) isolate(addr string, on bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dropAll[addr] = on
}

func (m *mesh) messages() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.msgs
}

// meshPort is one node's view of the mesh.
type meshPort struct {
	m    *mesh
	self string
}

func (p *meshPort) Exchange(ctx context.Context, to, kind string, payload []byte) ([]byte, error) {
	p.m.mu.Lock()
	target := p.m.nodes[to]
	blocked := p.m.cut[[2]string{p.self, to}] || p.m.dropAll[p.self] || p.m.dropAll[to]
	p.m.msgs++ // request frame
	p.m.mu.Unlock()
	if target == nil || blocked {
		return nil, fmt.Errorf("mesh: %s unreachable from %s", to, p.self)
	}
	var reply []byte
	var err error
	switch kind {
	case KindPush:
		reply, err = target.HandlePush(payload)
	case KindSync:
		reply, err = target.HandleSync(payload)
	case KindDelta:
		reply, err = target.HandleDelta(payload)
	default:
		err = fmt.Errorf("mesh: unknown kind %q", kind)
	}
	if err == nil {
		p.m.mu.Lock()
		p.m.msgs++ // reply frame
		p.m.mu.Unlock()
	}
	return reply, err
}

// newMeshEngines builds n engines over a fresh mesh, all running.
func newMeshEngines(t *testing.T, n int, clock simnet.Clock, seed int64) (*mesh, []*Engine) {
	t.Helper()
	m := newMesh()
	addrs := make([]string, n)
	engines := make([]*Engine, n)
	for i := range addrs {
		addrs[i] = fmt.Sprintf("shard-%d", i)
	}
	for i, addr := range addrs {
		e, err := NewEngine(Config{
			Self:              addr,
			Transport:         &meshPort{m: m, self: addr},
			Store:             NewStore(clock, time.Hour),
			Clock:             clock,
			Seed:              seed + int64(i),
			Interval:          5 * time.Millisecond,
			ReconcileInterval: 20 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("engine %d: %v", i, err)
		}
		e.SetPeers(addrs)
		m.mu.Lock()
		m.nodes[addr] = e
		m.mu.Unlock()
		engines[i] = e
	}
	for _, e := range engines {
		e.Run()
	}
	t.Cleanup(func() {
		for _, e := range engines {
			e.Stop()
		}
	})
	return m, engines
}

// waitConverged polls until every engine's store has the same
// checksum and the expected live count.
func waitConverged(t *testing.T, engines []*Engine, wantLive int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		converged := true
		var sum uint64
		for i, e := range engines {
			st := e.Store().Stats()
			if i == 0 {
				sum = st.Checksum
			}
			if st.Checksum != sum || (wantLive >= 0 && st.Live != wantLive) {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			for i, e := range engines {
				st := e.Store().Stats()
				t.Logf("engine %d: live=%d entries=%d checksum=%x", i, st.Live, st.Entries, st.Checksum)
			}
			t.Fatalf("engines did not converge within %v", within)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestEngineConvergence(t *testing.T) {
	clock := simnet.WallClock{}
	_, engines := newMeshEngines(t, 5, clock, 42)
	pub := NewPublisher("origin-a", clock)
	const total = 120
	for i := 0; i < total; i++ {
		// Spread publishes across entry points: rumors must cross.
		engines[i%len(engines)].Learn(pub.Entry(fmt.Sprintf("adv-%d", i), []byte("<A/>"), time.Hour))
	}
	waitConverged(t, engines, total, 5*time.Second)
}

func TestEngineTombstonePropagatesAndBlocksResurrection(t *testing.T) {
	clock := simnet.WallClock{}
	_, engines := newMeshEngines(t, 4, clock, 7)
	pub := NewPublisher("origin-a", clock)
	live := pub.Entry("adv-x", []byte("<A/>"), time.Hour)
	engines[0].Learn(live)
	waitConverged(t, engines, 1, 5*time.Second)

	engines[0].Learn(pub.Tombstone("adv-x"))
	waitConverged(t, engines, 0, 5*time.Second)

	// A stale replica re-pushing the old live version must be refused
	// everywhere: the tombstone's version dominates.
	for _, e := range engines {
		if res := e.Learn(live); res.Applied {
			t.Fatalf("stale live entry resurrected over tombstone")
		}
		if got, ok := e.Store().Get("adv-x"); !ok || !got.Deleted {
			t.Fatalf("tombstone missing: %+v ok=%v", got, ok)
		}
	}
}

func TestEnginePartitionHealsViaAntiEntropy(t *testing.T) {
	clock := simnet.WallClock{}
	m, engines := newMeshEngines(t, 4, clock, 99)
	// Isolate shard-3 completely, then publish.
	m.isolate("shard-3", true)
	pub := NewPublisher("origin-b", clock)
	for i := 0; i < 40; i++ {
		engines[0].Learn(pub.Entry(fmt.Sprintf("p-%d", i), []byte("<A/>"), time.Hour))
	}
	waitConverged(t, engines[:3], 40, 5*time.Second)
	if st := engines[3].Store().Stats(); st.Live != 0 {
		t.Fatalf("isolated shard learned %d entries", st.Live)
	}
	// Heal: rumors have long retired, so only digest reconciliation
	// can repair the partitioned shard.
	m.isolate("shard-3", false)
	waitConverged(t, engines, 40, 5*time.Second)
}

func TestEngineRumorsRetire(t *testing.T) {
	clock := simnet.WallClock{}
	_, engines := newMeshEngines(t, 3, clock, 5)
	pub := NewPublisher("origin-c", clock)
	for i := 0; i < 30; i++ {
		engines[0].Learn(pub.Entry(fmt.Sprintf("r-%d", i), []byte("<A/>"), time.Hour))
	}
	waitConverged(t, engines, 30, 5*time.Second)
	// Once everyone knows everything, every queue must drain.
	deadline := time.Now().Add(5 * time.Second)
	for {
		depth := 0
		for _, e := range engines {
			depth += e.Stats().QueueDepth
		}
		if depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rumor queues never drained: depth=%d", depth)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEngineLearnRefreshSkipsRumorQueue(t *testing.T) {
	clock := simnet.WallClock{}
	e, err := NewEngine(Config{
		Self:      "solo",
		Transport: &meshPort{m: newMesh(), self: "solo"},
		Store:     NewStore(clock, time.Hour),
		Clock:     clock,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pub := NewPublisher("o", clock)
	if res := e.Learn(pub.Entry("k", nil, time.Hour)); !res.New {
		t.Fatalf("first learn not new: %+v", res)
	}
	if e.Stats().QueueDepth != 1 {
		t.Fatalf("new entry not queued")
	}
	// A version refresh of a known key rides anti-entropy, not rumors.
	if res := e.Learn(pub.Entry("k", nil, time.Hour)); !res.Applied || res.New {
		t.Fatalf("refresh: %+v", res)
	}
	if d := e.Stats().QueueDepth; d != 1 {
		t.Fatalf("refresh changed queue depth: %d", d)
	}
	// A tombstone is news and must monger.
	e.Learn(pub.Tombstone("k2-unknown"))
	if d := e.Stats().QueueDepth; d != 2 {
		t.Fatalf("tombstone not queued: depth=%d", d)
	}
}

func TestEngineConcurrentLearnAndRounds(t *testing.T) {
	clock := simnet.WallClock{}
	_, engines := newMeshEngines(t, 3, clock, 11)
	var wg sync.WaitGroup
	var published atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			pub := NewPublisher(fmt.Sprintf("origin-%d", w), clock)
			for i := 0; i < 50; i++ {
				engines[(w+i)%len(engines)].Learn(pub.Entry(fmt.Sprintf("c-%d-%d", w, i), []byte("<A/>"), time.Hour))
				published.Add(1)
			}
		}(w)
	}
	wg.Wait()
	waitConverged(t, engines, int(published.Load()), 10*time.Second)
}

// TestReconcileResumesPastMaxDelta pins the delta-cursor fix: a pair
// diverged by more entries than one frame carries must still converge,
// with successive truncated frames covering successive windows. Before
// the resume cursor, every round re-sent the same leading MaxDelta
// entries (all rejected as duplicates) and the tail never shipped — a
// permanent livelock once any origin diverged past the frame cap.
// Entries are seeded via Store.Apply, not Learn, so the rumor path
// cannot mask an anti-entropy failure.
func TestReconcileResumesPastMaxDelta(t *testing.T) {
	const total, maxDelta = 20, 4
	build := func(t *testing.T) (*Engine, *Engine) {
		t.Helper()
		clock := simnet.WallClock{}
		m := newMesh()
		var engines []*Engine
		for i := 0; i < 2; i++ {
			addr := fmt.Sprintf("shard-%d", i)
			e, err := NewEngine(Config{
				Self:      addr,
				Transport: &meshPort{m: m, self: addr},
				Store:     NewStore(clock, time.Hour),
				Clock:     clock,
				Seed:      int64(i + 1),
				MaxDelta:  maxDelta,
			})
			if err != nil {
				t.Fatalf("engine %d: %v", i, err)
			}
			m.mu.Lock()
			m.nodes[addr] = e
			m.mu.Unlock()
			engines = append(engines, e)
		}
		engines[0].SetPeers([]string{"shard-0", "shard-1"})
		engines[1].SetPeers([]string{"shard-0", "shard-1"})
		pub := NewPublisher("origin-a", clock)
		for i := 0; i < total; i++ {
			engines[0].Store().Apply(pub.Entry(fmt.Sprintf("adv-%d", i), []byte("<A/>"), time.Hour))
		}
		return engines[0], engines[1]
	}
	converge := func(t *testing.T, initiator, other *Engine) {
		t.Helper()
		rounds := 0
		for ; rounds < 4*total/maxDelta; rounds++ {
			if initiator.Store().Checksum() == other.Store().Checksum() {
				break
			}
			initiator.reconcileRound()
		}
		a, b := initiator.Store().Stats(), other.Store().Stats()
		if a.Checksum != b.Checksum || a.Live != total || b.Live != total {
			t.Fatalf("no convergence after %d rounds: a{live=%d sum=%x} b{live=%d sum=%x}",
				rounds, a.Live, a.Checksum, b.Live, b.Checksum)
		}
		want := (total + maxDelta - 1) / maxDelta
		if rounds < want {
			t.Fatalf("converged in %d rounds; %d entries at %d per frame need >= %d", rounds, total, maxDelta, want)
		}
	}
	// Pull leg: the empty store initiates, the resume cursor round-trips
	// through the sync request and reply.
	t.Run("pull", func(t *testing.T) {
		full, empty := build(t)
		converge(t, empty, full)
	})
	// Push leg: the full store initiates, its second-leg delta resumes
	// at the engine-local push cursor.
	t.Run("push", func(t *testing.T) {
		full, empty := build(t)
		converge(t, full, empty)
	})
}
