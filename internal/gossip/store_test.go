package gossip

import (
	"testing"
	"time"

	"whisper/internal/simnet"
)

// fakeClock is a settable test clock.
type fakeClock struct{ t time.Time }

func (f *fakeClock) Now() time.Time { return f.t }

func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }

func newTestClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_700_000_000, 0)}
}

func liveEntry(key, origin string, version uint64, clock simnet.Clock, lifetime time.Duration) Entry {
	return Entry{
		Key:     key,
		Origin:  origin,
		Version: version,
		Expire:  clock.Now().Add(lifetime).UnixNano(),
		Payload: []byte("<Adv>" + key + "</Adv>"),
	}
}

func TestStoreVersionOrdering(t *testing.T) {
	clock := newTestClock()
	s := NewStore(clock, time.Hour)

	if res := s.Apply(liveEntry("k1", "o1", 5, clock, time.Hour)); !res.Applied || !res.New || !res.Live {
		t.Fatalf("first apply: %+v", res)
	}
	// Older version: rejected.
	if res := s.Apply(liveEntry("k1", "o1", 3, clock, time.Hour)); res.Applied {
		t.Fatalf("stale version applied")
	}
	// Same version: rejected (not newer).
	if res := s.Apply(liveEntry("k1", "o1", 5, clock, time.Hour)); res.Applied {
		t.Fatalf("equal version applied")
	}
	// Newer version: applied, not new.
	if res := s.Apply(liveEntry("k1", "o1", 9, clock, time.Hour)); !res.Applied || res.New {
		t.Fatalf("newer version: %+v", res)
	}
	got, ok := s.Get("k1")
	if !ok || got.Version != 9 {
		t.Fatalf("stored version = %d, want 9", got.Version)
	}
	if st := s.Stats(); st.Entries != 1 || st.Live != 1 || st.Rejected != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestStoreTombstoneBeatsLiveAtSameVersion(t *testing.T) {
	clock := newTestClock()
	s := NewStore(clock, time.Hour)
	s.Apply(liveEntry("k", "o", 7, clock, time.Hour))
	tomb := Entry{Key: "k", Origin: "o", Version: 7, Deleted: true, Expire: clock.Now().UnixNano()}
	if res := s.Apply(tomb); !res.Applied || res.Live {
		t.Fatalf("tombstone tie-break: %+v", res)
	}
	// The live copy at the same version must now lose.
	if res := s.Apply(liveEntry("k", "o", 7, clock, time.Hour)); res.Applied {
		t.Fatalf("live entry resurrected over same-version tombstone")
	}
}

func TestStoreExpiredOnArrivalBecomesTombstone(t *testing.T) {
	clock := newTestClock()
	s := NewStore(clock, time.Hour)
	e := liveEntry("k", "o", 2, clock, time.Second)
	clock.advance(5 * time.Second) // e is now past its deadline
	res := s.Apply(e)
	if !res.Applied || res.Live {
		t.Fatalf("expired-on-arrival: %+v", res)
	}
	got, _ := s.Get("k")
	if !got.Deleted || got.Payload != nil {
		t.Fatalf("expired arrival stored live: %+v", got)
	}
	// A staler live copy must not resurrect it.
	if res := s.Apply(liveEntry("k", "o", 1, clock, time.Hour)); res.Applied {
		t.Fatalf("stale copy resurrected expired entry")
	}
}

func TestStoreSweepExpiresThenCollects(t *testing.T) {
	clock := newTestClock()
	s := NewStore(clock, time.Minute)
	var deaths []string
	s.OnApply(func(e Entry, live bool) {
		if !live {
			deaths = append(deaths, e.Key)
		}
	})
	s.Apply(liveEntry("a", "o", 1, clock, time.Second))
	s.Apply(liveEntry("b", "o", 2, clock, time.Hour))

	// Before any deadline the sweep is free.
	if exp, gc := s.SweepExpired(); exp != 0 || gc != 0 {
		t.Fatalf("premature sweep: %d %d", exp, gc)
	}
	clock.advance(2 * time.Second)
	exp, gc := s.SweepExpired()
	if exp != 1 || gc != 0 {
		t.Fatalf("sweep after expiry: exp=%d gc=%d", exp, gc)
	}
	if len(deaths) != 1 || deaths[0] != "a" {
		t.Fatalf("death callbacks: %v", deaths)
	}
	if st := s.Stats(); st.Live != 1 || st.Entries != 2 {
		t.Fatalf("stats after expiry: %+v", st)
	}
	// TombstoneTTL later the tombstone is collected.
	clock.advance(2 * time.Minute)
	if _, gc := s.SweepExpired(); gc != 1 {
		t.Fatalf("tombstone not collected")
	}
	if st := s.Stats(); st.Entries != 1 {
		t.Fatalf("stats after GC: %+v", st)
	}
}

func TestStoreChecksumOrderIndependent(t *testing.T) {
	clock := newTestClock()
	a := NewStore(clock, time.Hour)
	b := NewStore(clock, time.Hour)
	entries := []Entry{
		liveEntry("k1", "o1", 1, clock, time.Hour),
		liveEntry("k2", "o1", 2, clock, time.Hour),
		liveEntry("k3", "o2", 7, clock, time.Hour),
	}
	for _, e := range entries {
		a.Apply(e)
	}
	for i := len(entries) - 1; i >= 0; i-- {
		b.Apply(entries[i])
	}
	if a.Checksum() != b.Checksum() {
		t.Fatalf("checksums diverge: %x vs %x", a.Checksum(), b.Checksum())
	}
	if a.Checksum() == 0 {
		t.Fatalf("checksum of non-empty store is zero")
	}
}

func TestDigestDeltaRoundTrip(t *testing.T) {
	clock := newTestClock()
	src := NewStore(clock, time.Hour)
	dst := NewStore(clock, time.Hour)
	for i := 0; i < 50; i++ {
		src.Apply(liveEntry(key(i), origin(i%3), uint64(100+i), clock, time.Hour))
	}
	// dst already holds a prefix from origin(0).
	dst.Apply(liveEntry(key(0), origin(0), 100, clock, time.Hour))

	digest := dst.AppendDigest(nil)
	parsed, off, err := ParseDigest(nil, digest)
	if err != nil {
		t.Fatalf("parse digest: %v", err)
	}
	if off != len(digest) {
		t.Fatalf("digest parse consumed %d of %d", off, len(digest))
	}
	if len(parsed) != 1 {
		t.Fatalf("digest entries = %d, want 1", len(parsed))
	}
	// dst's fingerprint for origin(0) differs (it holds a strict
	// subset), so the delta resends that origin in full alongside the
	// two origins dst has never seen: all 50 entries. The one
	// duplicate is rejected by the version comparison on Apply.
	delta, n, _ := src.AppendDelta(nil, parsed, 0, 0)
	if n != 50 {
		t.Fatalf("delta entries = %d, want 50", n)
	}
	for len(delta) > 0 {
		e, sz, err := DecodeEntry(delta)
		if err != nil {
			t.Fatalf("decode delta: %v", err)
		}
		delta = delta[sz:]
		dst.Apply(e)
	}
	if src.Checksum() != dst.Checksum() {
		t.Fatalf("stores diverge after delta")
	}
	// Converged stores have matching fingerprints: the next delta is
	// empty in both directions.
	parsed, _, err = ParseDigest(parsed[:0], dst.AppendDigest(nil))
	if err != nil {
		t.Fatalf("reparse digest: %v", err)
	}
	if _, n, _ := src.AppendDelta(nil, parsed, 0, 0); n != 0 {
		t.Fatalf("converged delta emitted %d entries", n)
	}
}

// TestDigestDeltaRepairsOutOfOrderHoles is the soak bug distilled:
// rumor pushes and key-sharded publishes deliver an origin's versions
// out of order, so one store can hold only the newest version while
// another holds only an older one. A max-version digest would make the
// newer store claim the whole prefix and the hole would never heal;
// the fingerprint digest must repair it in one exchange.
func TestDigestDeltaRepairsOutOfOrderHoles(t *testing.T) {
	clock := newTestClock()
	a := NewStore(clock, time.Hour)
	b := NewStore(clock, time.Hour)
	// Same origin, different keys: a saw only the newer update, b only
	// the older one.
	a.Apply(liveEntry("k-new", "o", 90, clock, time.Hour))
	b.Apply(liveEntry("k-old", "o", 10, clock, time.Hour))

	exchange := func(src, dst *Store) {
		parsed, _, err := ParseDigest(nil, dst.AppendDigest(nil))
		if err != nil {
			t.Fatalf("parse digest: %v", err)
		}
		delta, _, _ := src.AppendDelta(nil, parsed, 0, 0)
		for len(delta) > 0 {
			e, sz, err := DecodeEntry(delta)
			if err != nil {
				t.Fatalf("decode delta: %v", err)
			}
			delta = delta[sz:]
			dst.Apply(e)
		}
	}
	exchange(a, b)
	exchange(b, a)
	if a.Checksum() != b.Checksum() {
		t.Fatalf("out-of-order hole not repaired: %x vs %x", a.Checksum(), b.Checksum())
	}
	for _, key := range []string{"k-new", "k-old"} {
		for name, s := range map[string]*Store{"a": a, "b": b} {
			if _, ok := s.Get(key); !ok {
				t.Errorf("store %s missing %s after reconcile", name, key)
			}
		}
	}
}

func TestAppendDeltaTruncates(t *testing.T) {
	clock := newTestClock()
	src := NewStore(clock, time.Hour)
	for i := 0; i < 20; i++ {
		src.Apply(liveEntry(key(i), "o", uint64(i+1), clock, time.Hour))
	}
	_, n, more := src.AppendDelta(nil, nil, 5, 0)
	if n != 5 || !more {
		t.Fatalf("truncated delta = %d entries more=%v, want 5 with more", n, more)
	}
}

func TestWireEntryRoundTrip(t *testing.T) {
	e := Entry{Key: "adv-1", Origin: "peer-a", Version: 42, Deleted: true, Expire: 1234567890}
	buf := AppendEntry(nil, &e)
	got, n, err := DecodeEntry(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("decode: n=%d err=%v", n, err)
	}
	if got.Key != e.Key || got.Origin != e.Origin || got.Version != e.Version ||
		got.Deleted != e.Deleted || got.Expire != e.Expire || got.Payload != nil {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	// Every truncation must error, not panic or mis-parse.
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeEntry(buf[:i]); err == nil {
			t.Fatalf("truncation at %d decoded", i)
		}
	}
}

func TestPublisherVersionsMonotone(t *testing.T) {
	clock := newTestClock()
	p := NewPublisher("me", clock)
	e1 := p.Entry("k", nil, time.Hour)
	e2 := p.Entry("k", nil, time.Hour) // clock hasn't moved: must still advance
	if e2.Version <= e1.Version {
		t.Fatalf("versions not monotone: %d then %d", e1.Version, e2.Version)
	}
	tomb := p.Tombstone("k")
	if tomb.Version <= e2.Version || !tomb.Deleted {
		t.Fatalf("tombstone version/flags: %+v", tomb)
	}
}

func key(i int) string    { return "key-" + string(rune('a'+i%26)) + "-" + itoa(i) }
func origin(i int) string { return "origin-" + itoa(i) }

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}
