// Package gossip implements Whisper's epidemic advertisement
// dissemination: rumor mongering for fresh advertisements plus
// periodic status-digest reconciliation (anti-entropy) between shard
// pairs, in the style of Demers et al. and the Scuttlebutt protocol.
//
// The discovery layer of the paper relies on a single rendezvous peer
// and flood-republish of semantic advertisements — quadratic in shards
// once the rendezvous index is partitioned. This package bounds the
// dissemination cost: a fresh advertisement is pushed as a rumor to a
// small random fanout each round (and retired once enough recipients
// already knew it), while a background digest exchange repairs
// anything the rumor phase missed, so every shard converges on the
// full advertisement set in O(log n) rounds with batched, constant-ish
// message overhead.
//
// Consistency model:
//
//   - Every entry is owned by a single origin (the publishing b-peer):
//     only the origin ever writes new versions of its keys, so a
//     per-origin monotone version totally orders each entry's history.
//     Anti-entropy digests fingerprint each origin's current entry set
//     (count + order-independent checksum, see digest.go) rather than
//     claiming a version watermark — entries arrive out of order, so
//     watermark claims would hide missing prefixes forever.
//   - Versions are seeded from the injected clock (max(prev+1, nanos)),
//     so an origin that restarts cannot regress below its own history.
//   - Expiry travels with the entry as an absolute deadline: every
//     store evicts deterministically at Expire and rejects entries
//     that are already dead on arrival, so an expired advertisement
//     cannot resurrect from a stale replica — a newer version from the
//     origin is the only way back.
//   - Explicit unpublish is a tombstone (Deleted, version bumped),
//     garbage-collected TombstoneTTL after its deadline.
//
// The package is deterministic under test: randomness comes from a
// seeded rand.Rand, time from an injected simnet.Clock, and every
// loop delay is cancellable — the detrand and retryloop analyzers
// enforce this (see internal/analysis).
package gossip

import (
	"sync"
	"time"

	"whisper/internal/simnet"
)

// Entry is one replicated advertisement record. The zero Key is
// invalid.
type Entry struct {
	// Key identifies the advertisement (its AdvID).
	Key string
	// Origin is the stable name of the publishing peer. Only the
	// origin issues new versions of its keys.
	Origin string
	// Version orders an origin's writes to a key; higher wins.
	Version uint64
	// Deleted marks a tombstone (explicit unpublish or expiry).
	Deleted bool
	// Expire is the absolute death time in Unix nanoseconds. It
	// travels with the entry so every store evicts at the same
	// instant. For a tombstone it anchors garbage collection
	// (Expire + TombstoneTTL).
	Expire int64
	// Payload is the marshalled advertisement document; nil on
	// tombstones.
	Payload []byte
}

// DefaultTombstoneTTL is how long a tombstone outlives its deadline
// before garbage collection. It must comfortably exceed the maximum
// replication lag so a GC'd tombstone cannot let an older live copy
// sneak back in.
const DefaultTombstoneTTL = 10 * time.Minute

// supersedes reports whether a should replace b. Versions dominate;
// ties (which only happen when distinct origins claim one key) break
// deterministically so all stores settle on one winner: tombstones
// beat live entries, then the lexicographically larger origin wins.
func supersedes(a, b *Entry) bool {
	if a.Version != b.Version {
		return a.Version > b.Version
	}
	if a.Deleted != b.Deleted {
		return a.Deleted
	}
	return a.Origin > b.Origin
}

// Publisher mints versioned entries for one origin. Versions are
// clock-seeded monotone counters: an origin that restarts and loses
// its counter still publishes versions above everything it issued
// before.
type Publisher struct {
	origin string
	clock  simnet.Clock

	mu   sync.Mutex
	last uint64
}

// NewPublisher creates a publisher for the origin; a nil clock selects
// the wall clock.
func NewPublisher(origin string, clock simnet.Clock) *Publisher {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	return &Publisher{origin: origin, clock: clock}
}

// Origin returns the publisher's origin name.
func (p *Publisher) Origin() string { return p.origin }

// next returns a fresh version: the clock in nanoseconds, bumped past
// the previous issue when the clock hasn't advanced.
func (p *Publisher) next() uint64 {
	v := uint64(p.clock.Now().UnixNano())
	p.mu.Lock()
	if v <= p.last {
		v = p.last + 1
	}
	p.last = v
	p.mu.Unlock()
	return v
}

// Entry mints a live entry for key with the given payload and
// lifetime.
func (p *Publisher) Entry(key string, payload []byte, lifetime time.Duration) Entry {
	return Entry{
		Key:     key,
		Origin:  p.origin,
		Version: p.next(),
		Expire:  p.clock.Now().Add(lifetime).UnixNano(),
		Payload: payload,
	}
}

// Tombstone mints an unpublish record for key: it supersedes every
// prior version and is garbage-collected TombstoneTTL after now.
func (p *Publisher) Tombstone(key string) Entry {
	return Entry{
		Key:     key,
		Origin:  p.origin,
		Version: p.next(),
		Deleted: true,
		Expire:  p.clock.Now().UnixNano(),
	}
}
