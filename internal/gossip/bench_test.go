package gossip

import (
	"fmt"
	"testing"
	"time"
)

// The digest encode/compare and ring routing paths run every
// reconciliation round and on every routed discovery query; they are
// on the allocbudget hot-path roster and must stay allocation-free in
// steady state (buffers reused across rounds).

func benchStore(b *testing.B, origins, perOrigin int) *Store {
	b.Helper()
	clock := newTestClock()
	s := NewStore(clock, time.Hour)
	v := uint64(0)
	for o := 0; o < origins; o++ {
		for i := 0; i < perOrigin; i++ {
			v++
			s.Apply(Entry{
				Key:     fmt.Sprintf("k-%d-%d", o, i),
				Origin:  fmt.Sprintf("origin-%d", o),
				Version: v,
				Expire:  clock.Now().Add(time.Hour).UnixNano(),
				Payload: []byte("<Adv/>"),
			})
		}
	}
	return s
}

func BenchmarkAppendDigest(b *testing.B) {
	s := benchStore(b, 64, 32)
	buf := s.AppendDigest(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = s.AppendDigest(buf[:0])
	}
}

func BenchmarkParseDigest(b *testing.B) {
	s := benchStore(b, 64, 32)
	frame := s.AppendDigest(nil)
	scratch, _, err := ParseDigest(nil, frame)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch, _, _ = ParseDigest(scratch[:0], frame)
	}
}

func BenchmarkAppendDeltaConverged(b *testing.B) {
	// The steady-state case: peers agree, the delta walk compares
	// every origin and emits nothing.
	s := benchStore(b, 64, 32)
	frame := s.AppendDigest(nil)
	parsed, _, err := ParseDigest(nil, frame)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var n int
		buf, n, _ = s.AppendDelta(buf[:0], parsed, 0, 0)
		if n != 0 {
			b.Fatalf("converged delta emitted %d entries", n)
		}
	}
}

func BenchmarkHashTriple(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashTriple("whisper:SemAdv", "action", "univ:ProvideTranscript")
	}
}

func BenchmarkRingOwner(b *testing.B) {
	r := NewRing([]string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"}, DefaultVnodes)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Owner("whisper:SemAdv", "action", "univ:ProvideTranscript")
	}
}

func BenchmarkRingAppendOwners(b *testing.B) {
	r := NewRing([]string{"s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8"}, DefaultVnodes)
	var buf [3]string
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.AppendOwners(buf[:0], "whisper:SemAdv", "action", "univ:ProvideTranscript", 3)
	}
}

func BenchmarkStoreApplyRefresh(b *testing.B) {
	// Lease refreshes are the steady-state write: same key, bumped
	// version.
	clock := newTestClock()
	s := NewStore(clock, time.Hour)
	e := Entry{Key: "k", Origin: "o", Version: 1, Expire: clock.Now().Add(time.Hour).UnixNano()}
	s.Apply(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Version++
		s.Apply(e)
	}
}
