package gossip

import (
	"encoding/binary"
	"fmt"
)

// The anti-entropy digest is a per-origin fingerprint: for every
// origin the store has ever seen, the current entry count and an
// order-independent checksum over (key, origin, version). Two stores
// holding the same entry set for an origin have equal fingerprints and
// reconciliation skips the origin entirely — the steady-state cost is
// O(origins), never O(entries).
//
// A fingerprint digest is deliberately weaker than the Scuttlebutt
// max-version vector: it never claims a version prefix. Claims like
// "I hold everything up to version V" are unsound here, because
// entries reach a store out of order — rumor pushes and key-sharded
// direct publishes routinely deliver an origin's newest version to a
// node that has none of the older ones, and a node that then advertised
// max=V would hide the missing prefix from every future reconciliation
// (a permanent hole). The fingerprint only asserts what the store
// actually holds; when two fingerprints differ the responder sends the
// origin's full current entry set (version-ascending, capped at
// MaxDelta per frame, resumed across frames by a rotating cursor) and
// duplicate entries are rejected by the version comparison on Apply.
// Convergence of a badly diverged pair takes ceil(diff/MaxDelta)
// rounds; a converged pair costs nothing.
//
// Digest and delta encoding run once per reconciliation round per
// shard pair, on stores holding up to hundreds of thousands of
// entries, so both are on the allocbudget hot-path roster: they append
// into caller-owned buffers and allocate nothing themselves.

// DigestEntry is one parsed digest element. Origin aliases the frame
// it was parsed from.
type DigestEntry struct {
	Origin []byte
	// Count and Sig fingerprint the origin's current entry set.
	Count uint64
	Sig   uint64
}

// AppendDigest encodes the store's digest onto dst, origins in sorted
// order, and returns the extended slice.
func (s *Store) AppendDigest(dst []byte) []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst = binary.AppendUvarint(dst, uint64(len(s.origins)))
	for _, o := range s.origins {
		lg := s.logs[o]
		dst = binary.AppendUvarint(dst, uint64(len(o)))
		dst = append(dst, o...)
		dst = binary.AppendUvarint(dst, uint64(len(lg.entries)))
		dst = binary.LittleEndian.AppendUint64(dst, lg.sig)
	}
	return dst
}

// ParseDigest decodes a digest frame, appending its entries onto dst,
// and returns the extended slice and the bytes consumed. Entries
// alias b.
func ParseDigest(dst []DigestEntry, b []byte) ([]DigestEntry, int, error) {
	count, off := binary.Uvarint(b)
	if off <= 0 {
		return dst, 0, fmt.Errorf("gossip: digest count truncated")
	}
	for i := uint64(0); i < count; i++ {
		origin, n, err := readBytes(b[off:])
		if err != nil {
			return dst, 0, fmt.Errorf("gossip: digest origin: %w", err)
		}
		off += n
		c, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return dst, 0, fmt.Errorf("gossip: digest entry count truncated")
		}
		off += n
		if len(b)-off < 8 {
			return dst, 0, fmt.Errorf("gossip: digest sig truncated")
		}
		sig := binary.LittleEndian.Uint64(b[off:])
		off += 8
		dst = append(dst, DigestEntry{Origin: origin, Count: c, Sig: sig})
	}
	return dst, off, nil
}

// AppendDelta encodes onto dst the current entry set of every origin
// whose fingerprint differs from the peer's digest (origins the peer
// matches are skipped; origins only the peer knows are its job to send
// on the other leg), version-ascending per origin, up to maxEntries
// (<= 0 for unlimited). skip drops that many leading entries of the
// differing sequence before emitting — the resume cursor for a delta
// that was truncated last round. It returns the extended slice, the
// entry count, and whether entries remained beyond the window.
//
// The cursor is what makes truncation sound. Without it, a pair
// diverged by more than maxEntries livelocks: every round resends the
// same leading window, the receiver rejects it all as duplicates, and
// the tail never ships. With it, successive truncated frames cover
// disjoint windows; when the sequence is exhausted (more == false) the
// caller resets to zero, so any entries the shifting sequence skipped
// are covered on the next pass. peer must be ordered by origin, which
// parsed digests are (AppendDigest emits sorted origins).
func (s *Store) AppendDelta(dst []byte, peer []DigestEntry, maxEntries, skip int) ([]byte, int, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	j := 0
	for _, o := range s.origins {
		for j < len(peer) && lessBytesString(peer[j].Origin, o) {
			j++
		}
		lg := s.logs[o]
		if j < len(peer) && eqBytesString(peer[j].Origin, o) &&
			peer[j].Count == uint64(len(lg.entries)) && peer[j].Sig == lg.sig {
			continue
		}
		if skip >= len(lg.entries) {
			skip -= len(lg.entries)
			continue
		}
		for _, e := range lg.entries[skip:] {
			if maxEntries > 0 && n >= maxEntries {
				return dst, n, true
			}
			dst = AppendEntry(dst, e)
			n++
		}
		skip = 0
	}
	return dst, n, false
}

// lessBytesString reports b < s without converting either.
func lessBytesString(b []byte, s string) bool {
	n := len(b)
	if len(s) < n {
		n = len(s)
	}
	for i := 0; i < n; i++ {
		if b[i] != s[i] {
			return b[i] < s[i]
		}
	}
	return len(b) < len(s)
}

// eqBytesString reports b == s without converting either.
func eqBytesString(b []byte, s string) bool {
	if len(b) != len(s) {
		return false
	}
	for i := 0; i < len(b); i++ {
		if b[i] != s[i] {
			return false
		}
	}
	return true
}
