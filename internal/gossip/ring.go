package gossip

import "sort"

// Ring is a consistent-hash ring over the shard set, keyed on the
// (advType, attr, value) triples the discovery index is queried by.
// Each member contributes vnodes points so load spreads evenly; the
// ring is rebuilt deterministically from the sorted member list, so
// every peer that knows the same membership computes the same
// ownership map — rebalancing on membership change is a pure function
// of the new member set, no coordination required.
//
// A Ring is immutable after construction; holders swap in a new ring
// on membership change (see p2p.ShardRouter).
type Ring struct {
	vnodes  int
	members []string
	points  []ringPoint
}

// ringPoint is one vnode position: a hash and the index of the member
// that owns it.
type ringPoint struct {
	hash   uint64
	member int32
}

// DefaultVnodes is the per-member vnode count; 64 keeps the max/mean
// ownership skew under ~20% for small shard counts.
const DefaultVnodes = 64

// NewRing builds a ring over the members (duplicates ignored); vnodes
// <= 0 selects DefaultVnodes.
func NewRing(members []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	ms := append([]string(nil), members...)
	sort.Strings(ms)
	// Dedupe in place: duplicate members would double their ownership.
	out := ms[:0]
	for i, m := range ms {
		if i == 0 || m != ms[i-1] {
			out = append(out, m)
		}
	}
	ms = out
	r := &Ring{vnodes: vnodes, members: ms}
	r.points = make([]ringPoint, 0, len(ms)*vnodes)
	for i, m := range ms {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: vnodeHash(m, v), member: int32(i)})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Members returns the sorted member list backing the ring. Callers
// must not mutate it.
func (r *Ring) Members() []string { return r.members }

// FNV-1a constants, inlined so the hot hash paths never allocate a
// hash.Hash.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// hashString folds s into an FNV-1a state.
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

// fmix64 is the murmur3 finalizer. FNV-1a alone has poor avalanche
// for small suffix differences — vnode points of one member would sit
// in an arithmetic progression and wreck the ring's balance — so every
// ring position gets a final mix.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// HashTriple hashes a discovery index triple onto the ring's key
// space. NUL separators keep ("a","bc") and ("ab","c") distinct.
func HashTriple(advType, attr, value string) uint64 {
	h := uint64(fnvOffset)
	h = hashString(h, advType)
	h *= fnvPrime
	h = hashString(h, attr)
	h *= fnvPrime
	h = hashString(h, value)
	return fmix64(h)
}

// vnodeHash positions vnode v of member m on the ring.
func vnodeHash(m string, v int) uint64 {
	h := uint64(fnvOffset)
	h = hashString(h, m)
	// Fold the vnode index in byte by byte.
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return fmix64(h)
}

// Owner returns the member owning the triple ("" on an empty ring).
func (r *Ring) Owner(advType, attr, value string) string {
	if len(r.points) == 0 {
		return ""
	}
	i := r.search(HashTriple(advType, attr, value))
	return r.members[r.points[i].member]
}

// AppendOwners appends the k distinct members owning the triple —
// the first k unique members clockwise from the triple's point — onto
// dst and returns the extended slice. k is clamped to the member
// count.
func (r *Ring) AppendOwners(dst []string, advType, attr, value string, k int) []string {
	if len(r.points) == 0 || k <= 0 {
		return dst
	}
	if k > len(r.members) {
		k = len(r.members)
	}
	start := len(dst)
	i := r.search(HashTriple(advType, attr, value))
	for n := 0; n < len(r.points) && len(dst)-start < k; n++ {
		m := r.members[r.points[(i+n)%len(r.points)].member]
		dup := false
		for _, d := range dst[start:] {
			if d == m {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, m)
		}
	}
	return dst
}

// search returns the index of the first point at or clockwise-after h.
func (r *Ring) search(h uint64) int {
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash < h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return lo
}
