package gossip

import (
	"testing"
)

func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"s1", "s2", "s3"}, 32)
	b := NewRing([]string{"s3", "s1", "s2", "s2"}, 32) // order and dupes must not matter
	if len(a.Members()) != 3 || len(b.Members()) != 3 {
		t.Fatalf("members: %v vs %v", a.Members(), b.Members())
	}
	for i := 0; i < 200; i++ {
		at, attr, val := "whisper:SemAdv", "action", key(i)
		if a.Owner(at, attr, val) != b.Owner(at, attr, val) {
			t.Fatalf("rings diverge on %q", val)
		}
	}
}

func TestRingOwnersDistinct(t *testing.T) {
	r := NewRing([]string{"s1", "s2", "s3", "s4"}, 16)
	for i := 0; i < 100; i++ {
		owners := r.AppendOwners(nil, "t", "attr", key(i), 3)
		if len(owners) != 3 {
			t.Fatalf("owners = %v, want 3 distinct", owners)
		}
		seen := map[string]bool{}
		for _, o := range owners {
			if seen[o] {
				t.Fatalf("duplicate owner in %v", owners)
			}
			seen[o] = true
		}
		if owners[0] != r.Owner("t", "attr", key(i)) {
			t.Fatalf("Owner and AppendOwners[0] disagree")
		}
	}
	// k above the member count clamps.
	if owners := r.AppendOwners(nil, "t", "a", "v", 10); len(owners) != 4 {
		t.Fatalf("clamped owners = %v", owners)
	}
}

func TestRingBalance(t *testing.T) {
	members := []string{"s1", "s2", "s3", "s4"}
	r := NewRing(members, 0) // default vnodes
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner("whisper:SemAdv", "action", key(i)+itoa(i*31))]++
	}
	mean := keys / len(members)
	for m, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Fatalf("member %s owns %d of %d keys (mean %d): skew too large", m, c, keys, mean)
		}
	}
}

func TestRingRebalanceIsMinimal(t *testing.T) {
	before := NewRing([]string{"s1", "s2", "s3", "s4"}, 64)
	after := NewRing([]string{"s1", "s2", "s3", "s4", "s5"}, 64)
	const keys = 5000
	moved := 0
	for i := 0; i < keys; i++ {
		a := before.Owner("t", "action", key(i)+itoa(i))
		b := after.Owner("t", "action", key(i)+itoa(i))
		if a != b {
			if b != "s5" {
				t.Fatalf("key moved between surviving members: %s -> %s", a, b)
			}
			moved++
		}
	}
	// Consistent hashing moves ~1/5 of the keys to the new member.
	if moved < keys/10 || moved > keys/2 {
		t.Fatalf("moved %d of %d keys on member add", moved, keys)
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 8)
	if got := r.Owner("t", "a", "v"); got != "" {
		t.Fatalf("empty ring owner = %q", got)
	}
	if got := r.AppendOwners(nil, "t", "a", "v", 2); got != nil {
		t.Fatalf("empty ring owners = %v", got)
	}
}

func TestHashTripleSeparatesFields(t *testing.T) {
	if HashTriple("ab", "c", "") == HashTriple("a", "bc", "") {
		t.Fatalf("field boundary not separated")
	}
	if HashTriple("a", "", "b") == HashTriple("", "a", "b") {
		t.Fatalf("field boundary not separated")
	}
}
