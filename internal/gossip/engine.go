package gossip

import (
	"context"
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"whisper/internal/simnet"
)

// Transport carries one gossip exchange to a peer and returns its
// reply. The p2p layer implements it with a resolver query on the
// gossip protocol tag, so every frame is accounted in the simulated
// network's per-protocol traffic breakdown.
type Transport interface {
	Exchange(ctx context.Context, to, kind string, payload []byte) ([]byte, error)
}

// Exchange kinds.
const (
	// KindPush carries a rumor batch; the reply is a bitmap of entries
	// the receiver already knew.
	KindPush = "push"
	// KindSync carries a fixed 8-byte resume cursor followed by the
	// initiator's digest; the reply is the next cursor (0 when the
	// responder's delta was not truncated), the responder's digest,
	// then the entries the initiator lacks starting at the cursor.
	KindSync = "sync"
	// KindDelta carries the entries the responder lacked (the second
	// leg of a sync); the reply is empty.
	KindDelta = "delta"
)

// Config tunes an Engine.
type Config struct {
	// Self is this shard's address; it is excluded from peer
	// selection.
	Self string
	// Transport carries exchanges; required.
	Transport Transport
	// Store is the replicated set the engine maintains; required.
	Store *Store
	// Clock supplies time for version minting and expiry sweeps; nil
	// selects the wall clock.
	Clock simnet.Clock
	// Seed makes peer selection and round jitter deterministic.
	Seed int64
	// Interval is the rumor-mongering round period (default 25ms).
	Interval time.Duration
	// ReconcileInterval is the anti-entropy digest period (default
	// 8x Interval).
	ReconcileInterval time.Duration
	// Fanout is how many peers each rumor round pushes to (default 2).
	Fanout int
	// RetireAfter retires a rumor once this many push recipients
	// already knew it (default 2) — Karp-style feedback aging.
	RetireAfter int
	// MaxBatch bounds entries per push frame (default 512).
	MaxBatch int
	// MaxDelta bounds entries per delta frame (default 4096).
	MaxDelta int
	// ExchangeTimeout bounds one exchange round trip (default 500ms).
	ExchangeTimeout time.Duration
}

func (c *Config) applyDefaults() {
	if c.Clock == nil {
		c.Clock = simnet.WallClock{}
	}
	if c.Interval <= 0 {
		c.Interval = 25 * time.Millisecond
	}
	if c.ReconcileInterval <= 0 {
		c.ReconcileInterval = 8 * c.Interval
	}
	if c.Fanout <= 0 {
		c.Fanout = 2
	}
	if c.RetireAfter <= 0 {
		c.RetireAfter = 2
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 512
	}
	if c.MaxDelta <= 0 {
		c.MaxDelta = 4096
	}
	if c.ExchangeTimeout <= 0 {
		c.ExchangeTimeout = 500 * time.Millisecond
	}
}

// rumor is one fresh entry being mongered: the key plus the feedback
// counter that retires it.
type rumor struct {
	key  string
	cold int
}

// EngineStats snapshots an engine.
type EngineStats struct {
	// Rounds and Reconciles count completed rumor and digest rounds.
	Rounds, Reconciles uint64
	// QueueDepth is the current rumor queue length.
	QueueDepth int
	// RumorsQueued and RumorsRetired count queue turnover.
	RumorsQueued, RumorsRetired uint64
	// PushesSent / PushFailures count outgoing rumor frames.
	PushesSent, PushFailures uint64
	// EntriesPushed counts entries carried by outgoing pushes.
	EntriesPushed uint64
	// DeltaSent / DeltaRecv count entries exchanged by reconciliation.
	DeltaSent, DeltaRecv uint64
	// Peers is the current peer-set size.
	Peers int
}

// Engine drives one shard's gossip: a rumor-mongering loop pushing
// fresh entries to Fanout random peers per round, and a slower
// anti-entropy loop reconciling digests pairwise. Both are seeded and
// clock-injected, so a seed fully determines peer selection.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	peers   []string
	queue   []rumor
	queued  map[string]bool
	rng     *rand.Rand
	stats   EngineStats
	started bool

	// Per-peer delta resume cursors: pullCursor is the offset this
	// engine asks the peer to resume its delta at (carried in the sync
	// request), pushCursor is where this engine resumes its own
	// second-leg delta to the peer. Both reset to zero once a delta
	// fits its frame, so the rotation re-covers anything a shifting
	// sequence skipped.
	pullCursor map[string]uint64
	pushCursor map[string]int

	stopCh   chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	// Scratch buffers reused across rounds so the steady-state loops
	// don't allocate frames.
	digestBuf []byte
	deltaBuf  []byte
	parseBuf  []DigestEntry
}

// NewEngine creates an engine; call Run to start its loops.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Transport == nil {
		return nil, fmt.Errorf("gossip: config requires a Transport")
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("gossip: config requires a Store")
	}
	cfg.applyDefaults()
	return &Engine{
		cfg:        cfg,
		queued:     make(map[string]bool),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		stopCh:     make(chan struct{}),
		pullCursor: make(map[string]uint64),
		pushCursor: make(map[string]int),
	}, nil
}

// Store returns the engine's store.
func (e *Engine) Store() *Store { return e.cfg.Store }

// SetPeers replaces the peer set (self is filtered out). Called on
// membership change; the ring rebalance at the routing layer is
// driven from the same membership event.
func (e *Engine) SetPeers(peers []string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.peers = e.peers[:0]
	for _, p := range peers {
		if p != e.cfg.Self {
			e.peers = append(e.peers, p)
		}
	}
	e.stats.Peers = len(e.peers)
	// Cursors are positions in a specific peer's dialogue; drop state
	// for peers that left so a later rejoin starts from zero.
	for p := range e.pullCursor {
		if !containsString(e.peers, p) {
			delete(e.pullCursor, p)
		}
	}
	for p := range e.pushCursor {
		if !containsString(e.peers, p) {
			delete(e.pushCursor, p)
		}
	}
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// Learn merges an entry and, when it is news, enqueues it for rumor
// mongering. Version refreshes of keys the store already holds spread
// through reconciliation instead — steady-state lease refreshes must
// not occupy the rumor queue.
func (e *Engine) Learn(entry Entry) ApplyResult {
	res := e.cfg.Store.Apply(entry)
	if res.Applied && (res.New || !res.Live) {
		e.enqueue(entry.Key)
	}
	return res
}

func (e *Engine) enqueue(key string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.queued[key] {
		return
	}
	e.queued[key] = true
	e.queue = append(e.queue, rumor{key: key})
	e.stats.RumorsQueued++
	e.stats.QueueDepth = len(e.queue)
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.QueueDepth = len(e.queue)
	s.Peers = len(e.peers)
	return s
}

// Run starts the rumor and reconciliation loops. Idempotent.
func (e *Engine) Run() {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return
	}
	e.started = true
	e.mu.Unlock()
	e.wg.Add(1)
	go e.loop()
}

// Stop halts the loops and waits for them. Idempotent.
func (e *Engine) Stop() {
	e.stopOnce.Do(func() { close(e.stopCh) })
	e.wg.Wait()
}

// lifeCtx is the engine's lifecycle context: done once Stop runs.
// Exchange contexts derive from it, so stopping the engine cancels
// in-flight rounds instead of waiting out their timeouts — the
// engine's root context is its own lifecycle, never a detached
// context.Background().
type lifeCtx struct{ e *Engine }

func (c lifeCtx) Deadline() (deadline time.Time, ok bool) { return time.Time{}, false }

func (c lifeCtx) Done() <-chan struct{} { return c.e.stopCh }

func (c lifeCtx) Err() error {
	select {
	case <-c.e.stopCh:
		return context.Canceled
	default:
		return nil
	}
}

func (c lifeCtx) Value(key any) any { return nil }

// loop multiplexes the two cadences on one goroutine: rumor rounds at
// Interval (jittered ±25% so co-located shards don't beat in
// lockstep) and digest reconciliation at ReconcileInterval.
func (e *Engine) loop() {
	defer e.wg.Done()
	rumorT := time.NewTimer(e.jittered(e.cfg.Interval))
	reconT := time.NewTimer(e.jittered(e.cfg.ReconcileInterval))
	defer rumorT.Stop()
	defer reconT.Stop()
	for {
		select {
		case <-rumorT.C:
			e.cfg.Store.SweepExpired()
			e.rumorRound()
			rumorT.Reset(e.jittered(e.cfg.Interval))
		case <-reconT.C:
			e.reconcileRound()
			reconT.Reset(e.jittered(e.cfg.ReconcileInterval))
		case <-e.stopCh:
			return
		}
	}
}

// jittered returns d ± 25%, from the seeded rng.
func (e *Engine) jittered(d time.Duration) time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return d + time.Duration(e.rng.Int63n(int64(d)/2+1)) - d/4
}

// rumorRound pushes the head of the rumor queue to Fanout random
// peers and ages each rumor by how many recipients already knew it.
func (e *Engine) rumorRound() {
	e.mu.Lock()
	e.stats.Rounds++
	if len(e.queue) == 0 || len(e.peers) == 0 {
		e.mu.Unlock()
		return
	}
	n := len(e.queue)
	if n > e.cfg.MaxBatch {
		n = e.cfg.MaxBatch
	}
	keys := make([]string, n)
	for i := 0; i < n; i++ {
		keys[i] = e.queue[i].key
	}
	targets := e.pickPeersLocked(e.cfg.Fanout)
	e.mu.Unlock()

	// Encode the current state of each rumored key; keys whose entry
	// was GC'd between enqueue and send drop out of the frame and
	// retire immediately (old news by definition).
	var body []byte
	slotOf := make(map[string]int, n) // key -> frame slot
	for _, k := range keys {
		if ent, ok := e.cfg.Store.Get(k); ok {
			slotOf[k] = len(slotOf)
			body = AppendEntry(body, &ent)
		}
	}
	frame := AppendEntryCount(make([]byte, 0, len(body)+10), len(slotOf))
	frame = append(frame, body...)

	// known[i] accumulates how many targets already knew frame slot i.
	known := make([]int, len(slotOf))
	okTargets := 0
	for _, t := range targets {
		ctx, cancel := context.WithTimeout(lifeCtx{e}, e.cfg.ExchangeTimeout)
		reply, err := e.cfg.Transport.Exchange(ctx, t, KindPush, frame)
		cancel()
		e.mu.Lock()
		if err != nil {
			e.stats.PushFailures++
			e.mu.Unlock()
			continue
		}
		e.stats.PushesSent++
		e.stats.EntriesPushed += uint64(len(slotOf))
		e.mu.Unlock()
		okTargets++
		for i := range known {
			if i/8 < len(reply) && reply[i/8]&(1<<(i%8)) != 0 {
				known[i]++
			}
		}
	}

	// Age: a rumor whose push found only already-informed peers cools;
	// retire once cold enough (feedback aging).
	e.mu.Lock()
	defer e.mu.Unlock()
	kept := e.queue[:0]
	headKept := 0
	for i := range e.queue {
		r := e.queue[i]
		if i < n {
			slot, inFrame := slotOf[r.key]
			if !inFrame {
				delete(e.queued, r.key)
				e.stats.RumorsRetired++
				continue
			}
			if okTargets > 0 && known[slot] == okTargets {
				r.cold++
			}
			if okTargets > 0 && r.cold >= e.cfg.RetireAfter {
				delete(e.queued, r.key)
				e.stats.RumorsRetired++
				continue
			}
			headKept++
		}
		kept = append(kept, r)
	}
	// Rotate surviving head rumors to the back so a deep queue cycles
	// through every rumor instead of starving the tail.
	if headKept > 0 && headKept < len(kept) {
		rotated := make([]rumor, 0, len(kept))
		rotated = append(rotated, kept[headKept:]...)
		rotated = append(rotated, kept[:headKept]...)
		kept = rotated
	}
	e.queue = kept
	e.stats.QueueDepth = len(e.queue)
}

// reconcileRound runs one pairwise anti-entropy exchange: send our
// digest (with the resume cursor for the peer's delta), apply the
// peer's delta, then push back what the peer's digest proves it lacks,
// resuming our own delta where the last truncated frame left off.
func (e *Engine) reconcileRound() {
	e.mu.Lock()
	e.stats.Reconciles++
	targets := e.pickPeersLocked(1)
	digestBuf := e.digestBuf[:0]
	e.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	peer := targets[0]
	e.mu.Lock()
	resume := e.pullCursor[peer]
	e.mu.Unlock()

	req := append(digestBuf, make([]byte, 8)...)
	binary.LittleEndian.PutUint64(req[:8], resume)
	req = e.cfg.Store.AppendDigest(req)
	ctx, cancel := context.WithTimeout(lifeCtx{e}, e.cfg.ExchangeTimeout)
	reply, err := e.cfg.Transport.Exchange(ctx, peer, KindSync, req)
	cancel()
	e.mu.Lock()
	e.digestBuf = req
	parseBuf := e.parseBuf[:0]
	deltaBuf := e.deltaBuf[:0]
	e.mu.Unlock()
	if err != nil || len(reply) < 8 {
		return
	}

	// Reply: [next resume cursor][peer digest][entries we lack].
	next := binary.LittleEndian.Uint64(reply)
	peerDigest, off, err := ParseDigest(parseBuf, reply[8:])
	if err != nil {
		return
	}
	applied := e.applyFrameEntries(reply[8+off:])
	e.mu.Lock()
	if next > 0 {
		e.pullCursor[peer] = next
	} else {
		delete(e.pullCursor, peer)
	}
	skip := e.pushCursor[peer]
	e.mu.Unlock()

	// Second leg: what the peer lacks, resumed at our push cursor. The
	// cursor only advances on a delivered frame — a failed exchange
	// re-sends the same window next round.
	delta, count, more := e.cfg.Store.AppendDelta(deltaBuf, peerDigest, e.cfg.MaxDelta, skip)
	e.mu.Lock()
	e.parseBuf = peerDigest
	e.deltaBuf = delta
	e.stats.DeltaRecv += uint64(applied)
	if count == 0 {
		delete(e.pushCursor, peer)
	}
	e.mu.Unlock()
	if count == 0 {
		return
	}
	ctx, cancel = context.WithTimeout(lifeCtx{e}, e.cfg.ExchangeTimeout)
	_, err = e.cfg.Transport.Exchange(ctx, peer, KindDelta, delta)
	cancel()
	if err == nil {
		e.mu.Lock()
		e.stats.DeltaSent += uint64(count)
		if more {
			e.pushCursor[peer] = skip + count
		} else {
			delete(e.pushCursor, peer)
		}
		e.mu.Unlock()
	}
}

// applyFrameEntries applies a concatenated entry frame (no count
// prefix) and returns how many entries were news.
func (e *Engine) applyFrameEntries(b []byte) int {
	applied := 0
	for len(b) > 0 {
		ent, n, err := DecodeEntry(b)
		if err != nil {
			break
		}
		b = b[n:]
		if res := e.cfg.Store.Apply(ent); res.Applied {
			applied++
		}
	}
	return applied
}

// pickPeersLocked samples up to k distinct peers. Callers hold e.mu.
func (e *Engine) pickPeersLocked(k int) []string {
	if len(e.peers) == 0 {
		return nil
	}
	if k >= len(e.peers) {
		return append([]string(nil), e.peers...)
	}
	out := make([]string, 0, k)
	// Partial Fisher–Yates over a copy of the index space.
	idx := make([]int, len(e.peers))
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + e.rng.Intn(len(idx)-i)
		idx[i], idx[j] = idx[j], idx[i]
		out = append(out, e.peers[idx[i]])
	}
	return out
}

// --- server-side handlers --------------------------------------------

// HandlePush serves an inbound rumor batch: apply each entry, learn
// fresh ones onward (that is what makes rumors epidemic), and reply
// with the already-knew bitmap the sender ages rumors by.
func (e *Engine) HandlePush(payload []byte) ([]byte, error) {
	count, off, err := DecodeEntryCount(payload)
	if err != nil {
		return nil, err
	}
	b := payload[off:]
	bitmap := make([]byte, (count+7)/8)
	for i := 0; i < count; i++ {
		ent, n, err := DecodeEntry(b)
		if err != nil {
			return nil, fmt.Errorf("gossip: push entry %d: %w", i, err)
		}
		b = b[n:]
		if res := e.Learn(ent); !res.Applied {
			bitmap[i/8] |= 1 << (i % 8)
		}
	}
	return bitmap, nil
}

// HandleSync serves an inbound digest: reply with the next resume
// cursor, our digest, then the entries the initiator's digest proves
// it lacks, starting at the cursor the request carried. The cursor
// round-trips through the initiator, so the responder stays stateless.
func (e *Engine) HandleSync(payload []byte) ([]byte, error) {
	if len(payload) < 8 {
		return nil, fmt.Errorf("gossip: sync cursor truncated")
	}
	resume := binary.LittleEndian.Uint64(payload)
	theirs, _, err := ParseDigest(nil, payload[8:])
	if err != nil {
		return nil, err
	}
	out := make([]byte, 8)
	out = e.cfg.Store.AppendDigest(out)
	out, sent, more := e.cfg.Store.AppendDelta(out, theirs, e.cfg.MaxDelta, int(resume))
	next := uint64(0)
	if more {
		next = resume + uint64(sent)
	}
	binary.LittleEndian.PutUint64(out[:8], next)
	return out, nil
}

// HandleDelta serves the second sync leg: apply the entries.
func (e *Engine) HandleDelta(payload []byte) ([]byte, error) {
	applied := e.applyFrameEntries(payload)
	e.mu.Lock()
	e.stats.DeltaRecv += uint64(applied)
	e.mu.Unlock()
	return binary.AppendUvarint(nil, uint64(applied)), nil
}
