package gossip

import (
	"encoding/binary"
	"fmt"
)

// Wire encoding: length-prefixed binary frames. Advertisement payloads
// are opaque byte strings (XML documents), so the text-friendly
// encodings used elsewhere in the codebase would need escaping; the
// gossip frames instead use uvarint length prefixes throughout, which
// also keeps the digest and delta encoders allocation-free (they
// append into caller-owned buffers).

// entry flag bits.
const flagDeleted = 1

// AppendEntry encodes e onto dst and returns the extended slice.
func AppendEntry(dst []byte, e *Entry) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(e.Key)))
	dst = append(dst, e.Key...)
	dst = binary.AppendUvarint(dst, uint64(len(e.Origin)))
	dst = append(dst, e.Origin...)
	dst = binary.AppendUvarint(dst, e.Version)
	var flags byte
	if e.Deleted {
		flags |= flagDeleted
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(e.Expire))
	dst = binary.AppendUvarint(dst, uint64(len(e.Payload)))
	dst = append(dst, e.Payload...)
	return dst
}

// DecodeEntry decodes one entry from b, returning it and the number of
// bytes consumed. The entry's strings and payload are copies, safe to
// retain.
func DecodeEntry(b []byte) (Entry, int, error) {
	var e Entry
	off := 0
	key, n, err := readBytes(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("gossip: entry key: %w", err)
	}
	off += n
	origin, n, err := readBytes(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("gossip: entry origin: %w", err)
	}
	off += n
	version, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return e, 0, fmt.Errorf("gossip: entry version truncated")
	}
	off += n
	if off >= len(b) {
		return e, 0, fmt.Errorf("gossip: entry flags truncated")
	}
	flags := b[off]
	off++
	expire, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return e, 0, fmt.Errorf("gossip: entry expire truncated")
	}
	off += n
	payload, n, err := readBytes(b[off:])
	if err != nil {
		return e, 0, fmt.Errorf("gossip: entry payload: %w", err)
	}
	off += n
	e.Key = string(key)
	e.Origin = string(origin)
	e.Version = version
	e.Deleted = flags&flagDeleted != 0
	e.Expire = int64(expire)
	if len(payload) > 0 {
		e.Payload = append([]byte(nil), payload...)
	}
	return e, off, nil
}

// AppendEntryCount prefixes an entry batch with its count.
func AppendEntryCount(dst []byte, n int) []byte {
	return binary.AppendUvarint(dst, uint64(n))
}

// DecodeEntryCount reads a batch count prefix.
func DecodeEntryCount(b []byte) (int, int, error) {
	n, sz := binary.Uvarint(b)
	if sz <= 0 {
		return 0, 0, fmt.Errorf("gossip: batch count truncated")
	}
	return int(n), sz, nil
}

// readBytes reads a uvarint length prefix and the bytes that follow.
// The returned slice aliases b.
func readBytes(b []byte) ([]byte, int, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("length truncated")
	}
	if uint64(len(b)-n) < l {
		return nil, 0, fmt.Errorf("body truncated: want %d, have %d", l, len(b)-n)
	}
	return b[n : n+int(l)], n + int(l), nil
}
