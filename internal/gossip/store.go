package gossip

import (
	"math"
	"sort"
	"sync"
	"time"

	"whisper/internal/simnet"
)

// Store is one shard's replicated advertisement set: entries keyed by
// advertisement ID, plus a per-origin append-mostly log ordered by
// version that backs digest and delta extraction. All stores applying
// the same entries converge on the same state regardless of arrival
// order (version-vector conflict resolution), and all stores evict an
// entry at the same absolute deadline.
type Store struct {
	clock        simnet.Clock
	tombstoneTTL time.Duration
	// onApply observes every state change: live=true when the entry is
	// alive after the change, false when it died (tombstone, expiry,
	// GC). Invoked with the store lock held — the callback must not
	// call back into the Store.
	onApply func(e Entry, live bool)

	mu       sync.Mutex
	entries  map[string]*Entry
	logs     map[string]*originLog
	origins  []string // sorted keys of logs
	live     int
	checksum uint64
	// nextDeadline is the earliest pending expiry or tombstone-GC
	// instant; sweeps before it are free.
	nextDeadline int64
	stats        storeCounters
}

// originLog is one origin's current entries ordered by version, plus
// the fingerprint (count, sig) the anti-entropy digest advertises.
// Entries may arrive in any order — rumor pushes and sharded direct
// publishes deliver high versions first all the time — so no node can
// soundly claim a version watermark; the fingerprint only ever claims
// exactly what the log holds.
type originLog struct {
	entries []*Entry
	// sig is the XOR of entrySig over the current entries: two logs
	// holding the same set have equal (len, sig) fingerprints.
	sig uint64
}

type storeCounters struct {
	applied   uint64
	rejected  uint64
	expired   uint64
	collected uint64
}

// StoreStats snapshots a store.
type StoreStats struct {
	// Entries counts all records, tombstones included.
	Entries int
	// Live counts entries that are neither tombstoned nor past their
	// deadline sweep.
	Live int
	// Origins counts distinct publishing origins seen.
	Origins int
	// Applied and Rejected count Apply outcomes; Expired and Collected
	// count sweep evictions and tombstone GCs.
	Applied, Rejected, Expired, Collected uint64
	// Checksum is an order-independent digest of (key, origin,
	// version) over every record: two converged stores have equal
	// checksums.
	Checksum uint64
}

// NewStore creates a store. A nil clock selects the wall clock;
// tombstoneTTL <= 0 selects DefaultTombstoneTTL.
func NewStore(clock simnet.Clock, tombstoneTTL time.Duration) *Store {
	if clock == nil {
		clock = simnet.WallClock{}
	}
	if tombstoneTTL <= 0 {
		tombstoneTTL = DefaultTombstoneTTL
	}
	return &Store{
		clock:        clock,
		tombstoneTTL: tombstoneTTL,
		entries:      make(map[string]*Entry),
		logs:         make(map[string]*originLog),
		nextDeadline: math.MaxInt64,
	}
}

// OnApply installs the state-change observer (see the field doc).
// Must be set before the store receives traffic.
func (s *Store) OnApply(fn func(e Entry, live bool)) { s.onApply = fn }

// ApplyResult reports what Apply did.
type ApplyResult struct {
	// Applied is true when the entry superseded the stored state.
	Applied bool
	// New is true when the key was previously unknown.
	New bool
	// Live is true when the applied entry is alive (not a tombstone).
	Live bool
}

// Apply merges one entry. Entries already dead on arrival are applied
// as tombstones — their version still wins, which is exactly what
// blocks resurrection: a stale live copy pushed later loses the
// version comparison.
func (s *Store) Apply(e Entry) ApplyResult {
	now := s.clock.Now().UnixNano()
	if e.Expire <= now {
		e.Deleted = true
	}
	if e.Deleted {
		e.Payload = nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.entries[e.Key]
	if cur != nil && !supersedes(&e, cur) {
		s.stats.rejected++
		return ApplyResult{}
	}
	ec := new(Entry)
	*ec = e
	if cur != nil {
		s.dropFromLog(cur)
		s.checksum ^= entrySig(cur)
		if !cur.Deleted {
			s.live--
		}
	}
	s.entries[e.Key] = ec
	s.pushToLog(ec)
	s.checksum ^= entrySig(ec)
	if !ec.Deleted {
		s.live++
		s.lowerDeadline(ec.Expire)
	} else {
		s.lowerDeadline(ec.Expire + int64(s.tombstoneTTL))
	}
	s.stats.applied++
	if s.onApply != nil {
		s.onApply(*ec, !ec.Deleted)
	}
	return ApplyResult{Applied: true, New: cur == nil, Live: !ec.Deleted}
}

// Get returns the stored record for key (tombstones included).
func (s *Store) Get(key string) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// SweepExpired converts entries past their deadline into local
// tombstones (no version bump: every store does the same conversion
// at the same absolute instant) and garbage-collects tombstones that
// outlived TombstoneTTL. Returns (expired, collected).
func (s *Store) SweepExpired() (int, int) {
	now := s.clock.Now().UnixNano()
	s.mu.Lock()
	defer s.mu.Unlock()
	if now < s.nextDeadline {
		return 0, 0
	}
	next := int64(math.MaxInt64)
	expired, collected := 0, 0
	for key, e := range s.entries {
		if !e.Deleted && e.Expire <= now {
			e.Deleted = true
			e.Payload = nil
			s.live--
			s.stats.expired++
			expired++
			if s.onApply != nil {
				s.onApply(*e, false)
			}
		}
		if e.Deleted {
			gcAt := e.Expire + int64(s.tombstoneTTL)
			if gcAt <= now {
				s.dropFromLog(e)
				s.checksum ^= entrySig(e)
				delete(s.entries, key)
				s.stats.collected++
				collected++
				continue
			}
			if gcAt < next {
				next = gcAt
			}
			continue
		}
		if e.Expire < next {
			next = e.Expire
		}
	}
	s.nextDeadline = next
	return expired, collected
}

// Stats snapshots the store counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		Entries:   len(s.entries),
		Live:      s.live,
		Origins:   len(s.origins),
		Applied:   s.stats.applied,
		Rejected:  s.stats.rejected,
		Expired:   s.stats.expired,
		Collected: s.stats.collected,
		Checksum:  s.checksum,
	}
}

// Checksum returns the convergence checksum (see StoreStats.Checksum).
func (s *Store) Checksum() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checksum
}

// Len returns the total record count, tombstones included.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// entrySig hashes the replicated identity of a record. The Deleted
// flag is deliberately excluded: expiry conversion is a local,
// clock-synchronized transition and must not perturb convergence
// checks; explicit tombstones bump the version anyway.
func entrySig(e *Entry) uint64 {
	h := uint64(fnvOffset)
	h = hashString(h, e.Key)
	h ^= 0
	h *= fnvPrime
	h = hashString(h, e.Origin)
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(e.Version >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

// lowerDeadline pulls the next sweep deadline down. Callers hold s.mu.
func (s *Store) lowerDeadline(at int64) {
	if at < s.nextDeadline {
		s.nextDeadline = at
	}
}

// pushToLog appends e to its origin log. The common case — an origin's
// versions arrive in increasing order — is a straight append; out of
// order arrivals binary-insert. Callers hold s.mu.
func (s *Store) pushToLog(e *Entry) {
	lg := s.logs[e.Origin]
	if lg == nil {
		lg = &originLog{}
		s.logs[e.Origin] = lg
		i := sort.SearchStrings(s.origins, e.Origin)
		s.origins = append(s.origins, "")
		copy(s.origins[i+1:], s.origins[i:])
		s.origins[i] = e.Origin
	}
	lg.sig ^= entrySig(e)
	n := len(lg.entries)
	if n == 0 || lg.entries[n-1].Version <= e.Version {
		lg.entries = append(lg.entries, e)
		return
	}
	i := sort.Search(n, func(j int) bool { return lg.entries[j].Version >= e.Version })
	lg.entries = append(lg.entries, nil)
	copy(lg.entries[i+1:], lg.entries[i:])
	lg.entries[i] = e
}

// dropFromLog removes e from its origin log (the log survives even
// when emptied so converged empty fingerprints keep matching). Callers
// hold s.mu.
func (s *Store) dropFromLog(e *Entry) {
	lg := s.logs[e.Origin]
	if lg == nil {
		return
	}
	i := sort.Search(len(lg.entries), func(j int) bool { return lg.entries[j].Version >= e.Version })
	for ; i < len(lg.entries) && lg.entries[i].Version == e.Version; i++ {
		if lg.entries[i] == e {
			lg.entries = append(lg.entries[:i], lg.entries[i+1:]...)
			lg.sig ^= entrySig(e)
			return
		}
	}
}
