package replog

import (
	"encoding/xml"
	"fmt"
)

// journalState is the XML wire form of a journal for state transfer
// (election catch-up and post-restart rejoin).
type journalState struct {
	XMLName xml.Name     `xml:"JournalState"`
	NextSeq uint64       `xml:"NextSeq,attr"`
	UpTo    uint64       `xml:"UpTo,attr"`
	Cached  []cachedItem `xml:"Cached"`
	Entries []Entry      `xml:"Entry"`
}

type cachedItem struct {
	Key    string `xml:"Key,attr"`
	Seq    uint64 `xml:"Seq,attr"`
	Digest string `xml:"Digest,attr"`
	AppErr string `xml:"AppErr,attr,omitempty"`
	Reply  []byte `xml:"Reply,omitempty"`
}

// EncodeState serialises the full journal (snapshot + live entries) for
// transfer to a catching-up peer.
func (j *Journal) EncodeState() ([]byte, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := journalState{NextSeq: j.nextSeq, UpTo: j.snapUpTo}
	for k, c := range j.snapKeys {
		st.Cached = append(st.Cached, cachedItem{Key: k, Seq: c.Seq, Digest: c.Digest, AppErr: c.AppErr, Reply: c.Reply})
	}
	for _, e := range j.entries {
		st.Entries = append(st.Entries, *e)
	}
	return xml.Marshal(st)
}

// MergeState folds a peer's encoded journal into this one. Status
// priority decides per-key conflicts (higher status = more knowledge);
// unlike ApplyPrepare, merge never re-assigns ownership. Returns the
// number of entries that changed local state.
func (j *Journal) MergeState(data []byte) (int, error) {
	var st journalState
	if err := xml.Unmarshal(data, &st); err != nil {
		return 0, fmt.Errorf("replog: decode state: %w", err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	applied := 0
	committedBefore := j.highestCommittedLocked()
	if st.NextSeq > j.nextSeq {
		j.nextSeq = st.NextSeq
	}
	if st.UpTo > j.snapUpTo {
		j.snapUpTo = st.UpTo
	}
	for _, c := range st.Cached {
		if _, ok := j.snapKeys[c.Key]; ok {
			continue
		}
		if e, ok := j.entries[c.Key]; ok && e.Status >= StatusCommitted {
			continue
		}
		j.snapKeys[c.Key] = cachedReply{Seq: c.Seq, Digest: c.Digest, AppErr: c.AppErr, Reply: c.Reply}
		delete(j.entries, c.Key)
		applied++
	}
	for i := range st.Entries {
		e := st.Entries[i]
		if _, ok := j.snapKeys[e.Key]; ok {
			continue
		}
		cur, ok := j.entries[e.Key]
		if ok && cur.Status >= e.Status {
			continue
		}
		cp := e
		j.entries[e.Key] = &cp
		if e.Seq > j.nextSeq {
			j.nextSeq = e.Seq
		}
		applied++
	}
	if applied > 0 {
		j.counters.Add("merge.applied", int64(applied))
	}
	if j.highestCommittedLocked() > committedBefore {
		j.notifyCommitLocked()
	}
	j.maybeCompactLocked()
	return applied, nil
}
