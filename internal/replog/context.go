package replog

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
)

// ctxKey is the private context key type for the idempotency key.
type ctxKey struct{}

// ContextWithKey returns a context carrying the idempotency key for the
// current logical operation. The SOAP server stack installs the
// client-minted MessageID here; the proxy reuses it verbatim across
// every retry, re-bind and half-open probe of one logical call.
func ContextWithKey(ctx context.Context, key string) context.Context {
	return context.WithValue(ctx, ctxKey{}, key)
}

// KeyFromContext extracts the idempotency key, if any.
func KeyFromContext(ctx context.Context) string {
	k, _ := ctx.Value(ctxKey{}).(string)
	return k
}

// Digest returns the canonical short hash of a request payload, used to
// detect idempotency-key reuse with a different payload.
func Digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:8])
}
