package replog

import "context"

// This file implements the journal half of the follower read protocol
// (the read-index barrier): a follower that received a read-index from
// the coordinator must not execute the read until its own journal has
// absorbed every commit up to that index. WaitCommitted is that
// barrier; the journal broadcasts on every committed-seq advance so
// waiters wake without polling.

// ReadIndex returns the sequence number a linearizable-at-issue read
// must observe: the highest committed sequence this replica knows. On
// the coordinator this is the group's committed prefix — the index it
// hands to followers over the read-index protocol.
func (j *Journal) ReadIndex() uint64 { return j.HighestCommitted() }

// WaitCommitted blocks until the journal's highest committed sequence
// reaches at least seq, or ctx expires. It is the follower-side
// staleness barrier: a read issued at read-index seq may only execute
// once this returns nil.
func (j *Journal) WaitCommitted(ctx context.Context, seq uint64) error {
	for {
		j.mu.Lock()
		cur := j.highestCommittedLocked()
		ch := j.commitCh
		j.mu.Unlock()
		if cur >= seq {
			return nil
		}
		select {
		case <-ch:
			// A commit advanced the prefix; re-check.
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// notifyCommitLocked wakes every WaitCommitted waiter after the
// committed prefix advanced. Caller holds j.mu.
func (j *Journal) notifyCommitLocked() {
	close(j.commitCh)
	j.commitCh = make(chan struct{})
}

// highestCommittedLocked computes the highest committed sequence (live
// or snapshotted). Caller holds j.mu.
func (j *Journal) highestCommittedLocked() uint64 {
	hi := j.snapUpTo
	for _, e := range j.entries {
		if e.Status == StatusCommitted && e.Seq > hi {
			hi = e.Seq
		}
	}
	return hi
}
