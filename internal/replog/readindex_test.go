package replog

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

// commitKey drives one entry through Begin→Executing→Executed→Committed
// on a coordinator-owned journal, returning the assigned seq.
func commitKey(t *testing.T, j *Journal, key string) uint64 {
	t.Helper()
	res := j.Begin(key, "Op", Digest([]byte(key)))
	if res.Decision != BeginNew {
		t.Fatalf("Begin(%s) = %v, want BeginNew", key, res.Decision)
	}
	if err := j.MarkExecuting(key); err != nil {
		t.Fatalf("MarkExecuting(%s): %v", key, err)
	}
	if err := j.MarkExecuted(key, []byte("r"), ""); err != nil {
		t.Fatalf("MarkExecuted(%s): %v", key, err)
	}
	if err := j.MarkCommitted(key); err != nil {
		t.Fatalf("MarkCommitted(%s): %v", key, err)
	}
	return res.Seq
}

func TestWaitCommittedAlreadyReached(t *testing.T) {
	j := New("a", "addr-a")
	seq := commitKey(t, j, "k1")
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := j.WaitCommitted(ctx, seq); err != nil {
		t.Fatalf("WaitCommitted(%d) on a caught-up journal: %v", seq, err)
	}
	if got := j.ReadIndex(); got != seq {
		t.Fatalf("ReadIndex() = %d, want %d", got, seq)
	}
}

// TestWaitCommittedBlocksUntilApply is the core follower-lag property:
// a waiter at a read-index ahead of the local prefix must block (not
// return early) until the commit is applied.
func TestWaitCommittedBlocksUntilApply(t *testing.T) {
	follower := New("b", "addr-b")
	follower.ApplyCommit(Entry{Seq: 1, Key: "k1", Op: "Op", Status: StatusCommitted})

	released := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		released <- follower.WaitCommitted(ctx, 3)
	}()

	select {
	case err := <-released:
		t.Fatalf("WaitCommitted(3) returned early (err=%v) with prefix at 1", err)
	case <-time.After(50 * time.Millisecond):
		// Still blocked, as required.
	}

	follower.ApplyCommit(Entry{Seq: 2, Key: "k2", Op: "Op", Status: StatusCommitted})
	select {
	case err := <-released:
		t.Fatalf("WaitCommitted(3) released at prefix 2 (err=%v)", err)
	case <-time.After(50 * time.Millisecond):
	}

	follower.ApplyCommit(Entry{Seq: 3, Key: "k3", Op: "Op", Status: StatusCommitted})
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("WaitCommitted(3) after apply: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("WaitCommitted(3) never released after the commit applied")
	}
}

func TestWaitCommittedContextExpiry(t *testing.T) {
	j := New("a", "addr-a")
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := j.WaitCommitted(ctx, 7); err == nil {
		t.Fatal("WaitCommitted(7) on an empty journal returned nil, want ctx error")
	}
}

// TestWaitCommittedMergeStateWakes verifies the state-transfer path
// (rejoin/catch-up) also releases read-index waiters, not just the
// replication pipe's ApplyCommit.
func TestWaitCommittedMergeStateWakes(t *testing.T) {
	src := New("a", "addr-a")
	commitKey(t, src, "k1")
	commitKey(t, src, "k2")
	state, err := src.EncodeState()
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}

	dst := New("b", "addr-b")
	released := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		released <- dst.WaitCommitted(ctx, 2)
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := dst.MergeState(state); err != nil {
		t.Fatalf("MergeState: %v", err)
	}
	select {
	case err := <-released:
		if err != nil {
			t.Fatalf("WaitCommitted after merge: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("MergeState did not wake the read-index waiter")
	}
}

// TestWaitCommittedConcurrent hammers the barrier from many goroutines
// while commits race in — run under -race this doubles as the
// notification-channel data-race check.
func TestWaitCommittedConcurrent(t *testing.T) {
	j := New("a", "addr-a")
	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(target uint64) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			errs <- j.WaitCommitted(ctx, target)
		}(uint64(1 + i%8))
	}
	for i := 0; i < 8; i++ {
		commitKey(t, j, fmt.Sprintf("key-%d", i))
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatalf("concurrent WaitCommitted: %v", err)
		}
	}
}
