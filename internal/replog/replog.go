// Package replog implements a per-group replicated operation journal
// giving exactly-once, in-order execution of non-idempotent operations
// across crash, re-bind and retry.
//
// The group coordinator assigns monotone sequence numbers to keyed
// requests, replicates journal entries (idempotency key, operation,
// payload digest, cached reply) to the follower replicas over a
// dedicated pipe before acknowledging the client, and dedupes retried
// requests by idempotency key — returning the cached reply instead of
// re-executing the business operation. The journal compacts committed
// entries into a snapshot, and state-transfers its contents to peers
// rejoining after a crash; a newly elected coordinator catches up to
// the highest committed sequence before serving (see the election
// barrier in internal/bpeer).
//
// The journal deliberately is not a full replicated state machine:
// followers never execute operations, they only store the coordinator's
// outcome so that any of them can answer a retry authoritatively after
// failover. That is exactly the property the WS-FTM-style client-retry
// baseline (internal/baseline) lacks.
package replog

import (
	"fmt"
	"sort"
	"sync"

	"whisper/internal/metrics"
)

// Status is the lifecycle state of a journal entry. The numeric values
// are merge priorities: when two replicas disagree about an entry
// during state transfer, the higher status wins (it embeds strictly
// more knowledge about the operation's outcome).
type Status int

const (
	// StatusPrepared: the coordinator claimed the key and assigned a
	// sequence number, but execution has not begun. Safe to abort.
	StatusPrepared Status = 1
	// StatusExecuting: the handler was started; the outcome is unknown
	// until it finishes. Observing this after a restart means the
	// coordinator crashed mid-execution — the entry is poisoned.
	StatusExecuting Status = 2
	// StatusAborted: the origin proved the operation never executed;
	// the key may be re-owned and executed by another coordinator.
	StatusAborted Status = 3
	// StatusPoisoned: the outcome is permanently unknown (crash during
	// execution). The operation is never re-executed; retries receive
	// a retryable "outcome unknown" error forever.
	StatusPoisoned Status = 4
	// StatusExecuted: the handler finished and the reply (or
	// application error) is recorded locally, not yet replicated.
	StatusExecuted Status = 5
	// StatusCommitted: the reply is replicated to the followers; the
	// entry is immutable and eligible for snapshot compaction.
	StatusCommitted Status = 6
)

func (s Status) String() string {
	switch s {
	case StatusPrepared:
		return "prepared"
	case StatusExecuting:
		return "executing"
	case StatusAborted:
		return "aborted"
	case StatusPoisoned:
		return "poisoned"
	case StatusExecuted:
		return "executed"
	case StatusCommitted:
		return "committed"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Entry is one journaled operation. It is the unit of replication and
// state transfer; all fields are XML-serialisable.
type Entry struct {
	Seq        uint64 `xml:"Seq,attr"`
	Key        string `xml:"Key,attr"`
	Op         string `xml:"Op,attr"`
	Digest     string `xml:"Digest,attr"`
	Origin     string `xml:"Origin,attr"`
	OriginAddr string `xml:"OriginAddr,attr"`
	Status     Status `xml:"Status,attr"`
	AppErr     string `xml:"AppErr,attr,omitempty"`
	Reply      []byte `xml:"Reply,omitempty"`
}

// cachedReply is the compacted remnant of a committed entry.
type cachedReply struct {
	Seq    uint64
	Digest string
	AppErr string
	Reply  []byte
}

// Decision classifies a Begin call.
type Decision int

const (
	// BeginNew: the key is unclaimed (or re-owned after an abort);
	// the caller must execute the operation.
	BeginNew Decision = iota
	// BeginCached: the operation already executed; the cached reply
	// (or recorded application error) is authoritative.
	BeginCached
	// BeginConflict: the key exists with a different payload digest —
	// an application error, never retried.
	BeginConflict
	// BeginPending: another coordinator holds the key in Prepared
	// state; the caller must resolve the outcome with the origin
	// before executing.
	BeginPending
	// BeginPoisoned: the outcome is permanently unknown; the caller
	// must return a retryable infrastructure error without executing.
	BeginPoisoned
)

// BeginResult reports the dedup decision for a keyed request.
type BeginResult struct {
	Decision Decision
	Seq      uint64
	Reply    []byte
	AppErr   string
	// Origin/OriginAddr identify the preparing coordinator when
	// Decision == BeginPending.
	Origin     string
	OriginAddr string
}

// Journal is the per-replica operation journal. All methods are safe
// for concurrent use. The zero value is not usable; use New.
//
// The journal is owned by a b-peer for the lifetime of the process —
// it survives Crash/Restart cycles (modelling a disk-backed log), which
// is what makes post-restart state transfer meaningful.
type Journal struct {
	mu      sync.Mutex
	owner   string // replica name, used as Origin for entries it prepares
	addr    string // replica transport address, stored for remote resolution
	entries map[string]*Entry
	nextSeq uint64

	// snapshot state: committed entries at seq <= snapUpTo are folded
	// into snapKeys and removed from entries.
	snapUpTo uint64
	snapKeys map[string]cachedReply

	compactAt int
	counters  *metrics.Counter

	// commitCh is closed and replaced whenever the committed prefix
	// advances; WaitCommitted blocks on it (see readindex.go).
	commitCh chan struct{}
}

// DefaultCompactionThreshold is the live-entry count at which
// MarkCommitted folds committed entries into the snapshot.
const DefaultCompactionThreshold = 256

// New creates an empty journal owned by the named replica.
func New(owner, addr string) *Journal {
	return &Journal{
		owner:     owner,
		addr:      addr,
		entries:   make(map[string]*Entry),
		snapKeys:  make(map[string]cachedReply),
		compactAt: DefaultCompactionThreshold,
		counters:  metrics.NewCounter(),
		commitCh:  make(chan struct{}),
	}
}

// SetCompactionThreshold overrides the live-entry count that triggers
// snapshot compaction. Values < 1 disable compaction.
func (j *Journal) SetCompactionThreshold(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.compactAt = n
}

// Counters exposes the journal's operation counters (begin.new,
// begin.cached, commit, abort, poison, compact, merge.applied …).
func (j *Journal) Counters() *metrics.Counter { return j.counters }

// Begin claims the idempotency key for execution, or reports why the
// operation must not (or need not) run. digest is the canonical hash of
// the request payload (see Digest).
func (j *Journal) Begin(key, op, digest string) BeginResult {
	j.mu.Lock()
	defer j.mu.Unlock()

	if c, ok := j.snapKeys[key]; ok {
		if c.Digest != digest {
			j.counters.Add("begin.conflict", 1)
			return BeginResult{Decision: BeginConflict, Seq: c.Seq}
		}
		j.counters.Add("begin.cached", 1)
		return BeginResult{Decision: BeginCached, Seq: c.Seq, Reply: c.Reply, AppErr: c.AppErr}
	}
	e, ok := j.entries[key]
	if !ok {
		j.nextSeq++
		j.entries[key] = &Entry{
			Seq: j.nextSeq, Key: key, Op: op, Digest: digest,
			Origin: j.owner, OriginAddr: j.addr, Status: StatusPrepared,
		}
		j.counters.Add("begin.new", 1)
		return BeginResult{Decision: BeginNew, Seq: j.nextSeq}
	}
	if e.Digest != digest {
		j.counters.Add("begin.conflict", 1)
		return BeginResult{Decision: BeginConflict, Seq: e.Seq}
	}
	switch e.Status {
	case StatusExecuted, StatusCommitted:
		j.counters.Add("begin.cached", 1)
		return BeginResult{Decision: BeginCached, Seq: e.Seq, Reply: e.Reply, AppErr: e.AppErr}
	case StatusPoisoned:
		j.counters.Add("begin.poisoned", 1)
		return BeginResult{Decision: BeginPoisoned, Seq: e.Seq}
	case StatusExecuting:
		// The serve loop is single-goroutine, so a live Executing entry
		// cannot be observed by a new Begin on the same replica; seeing
		// one means a crash interrupted the handler. The outcome is
		// unknowable — poison the entry.
		e.Status = StatusPoisoned
		j.counters.Add("poison", 1)
		return BeginResult{Decision: BeginPoisoned, Seq: e.Seq}
	case StatusAborted:
		// Aborted proves the operation never executed; re-own it.
		e.Status = StatusPrepared
		e.Origin = j.owner
		e.OriginAddr = j.addr
		j.counters.Add("begin.reown", 1)
		return BeginResult{Decision: BeginNew, Seq: e.Seq}
	case StatusPrepared:
		if e.Origin == j.owner {
			// Our own claim (e.g. a replicated PREPARE raced the
			// client retry): resume it.
			j.counters.Add("begin.resume", 1)
			return BeginResult{Decision: BeginNew, Seq: e.Seq}
		}
		j.counters.Add("begin.pending", 1)
		return BeginResult{Decision: BeginPending, Seq: e.Seq, Origin: e.Origin, OriginAddr: e.OriginAddr}
	default:
		j.counters.Add("begin.poisoned", 1)
		return BeginResult{Decision: BeginPoisoned, Seq: e.Seq}
	}
}

// CachedReply returns the recorded outcome for an executed or
// committed key, checking live entries and the snapshot.
func (j *Journal) CachedReply(key string) (reply []byte, appErr string, ok bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if c, found := j.snapKeys[key]; found {
		return c.Reply, c.AppErr, true
	}
	if e, found := j.entries[key]; found && (e.Status == StatusExecuted || e.Status == StatusCommitted) {
		return e.Reply, e.AppErr, true
	}
	return nil, "", false
}

// Entry returns a copy of the entry for key, if present.
func (j *Journal) Entry(key string) (Entry, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return Entry{}, false
	}
	return *e, true
}

// MarkExecuting transitions a Prepared entry (owned by this replica)
// to Executing. It fails if the entry was aborted or taken over in the
// meantime — the caller must not run the handler in that case. This is
// the local half of the deposed-coordinator race: exactly one of
// MarkExecuting and Resolve wins under the journal mutex.
func (j *Journal) MarkExecuting(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return fmt.Errorf("replog: no entry for key %q", key)
	}
	if e.Status != StatusPrepared || e.Origin != j.owner {
		return fmt.Errorf("replog: key %q is %s (origin %s), not prepared here", key, e.Status, e.Origin)
	}
	e.Status = StatusExecuting
	return nil
}

// MarkExecuted records the handler outcome (reply bytes or an
// application error string) for an Executing entry.
func (j *Journal) MarkExecuted(key string, reply []byte, appErr string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return fmt.Errorf("replog: no entry for key %q", key)
	}
	if e.Status != StatusExecuting {
		return fmt.Errorf("replog: key %q is %s, not executing", key, e.Status)
	}
	e.Status = StatusExecuted
	e.Reply = reply
	e.AppErr = appErr
	return nil
}

// MarkCommitted finalises an Executed entry after successful
// replication and triggers compaction when the live set grows past the
// threshold.
func (j *Journal) MarkCommitted(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return fmt.Errorf("replog: no entry for key %q", key)
	}
	if e.Status != StatusExecuted && e.Status != StatusCommitted {
		return fmt.Errorf("replog: key %q is %s, not executed", key, e.Status)
	}
	e.Status = StatusCommitted
	j.counters.Add("commit", 1)
	j.notifyCommitLocked()
	j.maybeCompactLocked()
	return nil
}

// MarkAborted abandons a Prepared or Executing claim whose operation
// provably did not execute (fail-stop backend contract). The key
// becomes re-ownable by any coordinator.
func (j *Journal) MarkAborted(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return fmt.Errorf("replog: no entry for key %q", key)
	}
	if e.Status == StatusExecuted || e.Status == StatusCommitted || e.Status == StatusPoisoned {
		return fmt.Errorf("replog: key %q is %s, cannot abort", key, e.Status)
	}
	e.Status = StatusAborted
	j.counters.Add("abort", 1)
	return nil
}

// MarkPoisoned permanently marks the entry's outcome unknown.
func (j *Journal) MarkPoisoned(key string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return
	}
	if e.Status == StatusExecuted || e.Status == StatusCommitted {
		return
	}
	if e.Status != StatusPoisoned {
		e.Status = StatusPoisoned
		j.counters.Add("poison", 1)
	}
}

// Resolve answers a remote coordinator asking about a key this replica
// prepared. If the entry is still Prepared it is atomically aborted —
// this replica has provably not started executing it, and the abort
// guarantees it never will (MarkExecuting refuses non-Prepared
// entries). Returns the resulting status.
func (j *Journal) Resolve(key string) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.snapKeys[key]; ok {
		return StatusCommitted
	}
	e, ok := j.entries[key]
	if !ok {
		// Unknown key: nothing was executed here. Report aborted so
		// the asker may own it.
		return StatusAborted
	}
	if e.Status == StatusPrepared {
		e.Status = StatusAborted
		j.counters.Add("abort", 1)
	}
	return e.Status
}

// Reown re-claims an Aborted entry for this replica after remote
// resolution, returning it to Prepared under the local owner.
func (j *Journal) Reown(key string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return fmt.Errorf("replog: no entry for key %q", key)
	}
	if e.Status != StatusAborted && e.Status != StatusPrepared {
		return fmt.Errorf("replog: key %q is %s, cannot re-own", key, e.Status)
	}
	e.Status = StatusPrepared
	e.Origin = j.owner
	e.OriginAddr = j.addr
	j.counters.Add("begin.reown", 1)
	return nil
}

// AdoptReply installs a remotely resolved outcome (the origin executed
// the operation) so future retries hit the local cache.
func (j *Journal) AdoptReply(key string, reply []byte, appErr string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	e, ok := j.entries[key]
	if !ok {
		return
	}
	if e.Status == StatusCommitted {
		return
	}
	e.Status = StatusCommitted
	e.Reply = reply
	e.AppErr = appErr
	j.counters.Add("merge.adopted", 1)
	j.notifyCommitLocked()
	j.maybeCompactLocked()
}

// ApplyPrepare applies a replicated PREPARE from the coordinator. A
// replicated claim overwrites a local Prepared/Aborted entry and adopts
// the new origin: the coordinator is asserting ownership (possibly a
// re-own after an abort).
func (j *Journal) ApplyPrepare(e Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur, ok := j.entries[e.Key]
	if ok && cur.Status != StatusPrepared && cur.Status != StatusAborted {
		// We know more than the sender (executed/poisoned); keep ours.
		return
	}
	prep := e
	prep.Status = StatusPrepared
	prep.Reply = nil
	prep.AppErr = ""
	j.entries[e.Key] = &prep
	if e.Seq > j.nextSeq {
		j.nextSeq = e.Seq
	}
	j.counters.Add("apply.prepare", 1)
}

// ApplyCommit applies a replicated COMMIT (reply included) from the
// coordinator.
func (j *Journal) ApplyCommit(e Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	com := e
	com.Status = StatusCommitted
	j.entries[e.Key] = &com
	if e.Seq > j.nextSeq {
		j.nextSeq = e.Seq
	}
	j.counters.Add("apply.commit", 1)
	j.notifyCommitLocked()
	j.maybeCompactLocked()
}

// ApplyAbort applies a replicated ABORT from the (failing-over)
// coordinator: the operation provably never executed there.
func (j *Journal) ApplyAbort(e Entry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	cur, ok := j.entries[e.Key]
	if ok && cur.Status != StatusPrepared && cur.Status != StatusExecuting && cur.Status != StatusAborted {
		return
	}
	ab := e
	ab.Status = StatusAborted
	j.entries[e.Key] = &ab
	if e.Seq > j.nextSeq {
		j.nextSeq = e.Seq
	}
	j.counters.Add("apply.abort", 1)
}

// maybeCompactLocked folds committed entries into the snapshot when the
// live set exceeds the threshold. Caller holds j.mu.
func (j *Journal) maybeCompactLocked() {
	if j.compactAt < 1 || len(j.entries) < j.compactAt {
		return
	}
	for k, e := range j.entries {
		if e.Status != StatusCommitted {
			continue
		}
		j.snapKeys[k] = cachedReply{Seq: e.Seq, Digest: e.Digest, AppErr: e.AppErr, Reply: e.Reply}
		if e.Seq > j.snapUpTo {
			j.snapUpTo = e.Seq
		}
		delete(j.entries, k)
	}
	j.counters.Add("compact", 1)
}

// HighestCommitted returns the highest sequence number known committed
// (live or snapshotted).
func (j *Journal) HighestCommitted() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.highestCommittedLocked()
}

// Stats summarises the journal for operator tooling.
type Stats struct {
	NextSeq          uint64
	HighestCommitted uint64
	Live             int
	Snapshotted      int
	SnapshotUpTo     uint64
	ByStatus         map[string]int
}

// Stats returns a point-in-time summary.
func (j *Journal) Stats() Stats {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Stats{
		NextSeq:      j.nextSeq,
		Live:         len(j.entries),
		Snapshotted:  len(j.snapKeys),
		SnapshotUpTo: j.snapUpTo,
		ByStatus:     make(map[string]int),
	}
	hi := j.snapUpTo
	for _, e := range j.entries {
		st.ByStatus[e.Status.String()]++
		if e.Status == StatusCommitted && e.Seq > hi {
			hi = e.Seq
		}
	}
	st.HighestCommitted = hi
	return st
}

// StatusLines renders a sorted human-readable dump for peerctl.
func (j *Journal) StatusLines() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	lines := make([]string, 0, len(j.entries))
	for _, e := range j.entries {
		lines = append(lines, fmt.Sprintf("seq=%d key=%s op=%s status=%s origin=%s", e.Seq, e.Key, e.Op, e.Status, e.Origin))
	}
	sort.Strings(lines)
	return lines
}
