package replog

import (
	"bytes"
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestBeginNewExecuteCommitCache(t *testing.T) {
	j := New("peer-1", "addr-1")
	payload := []byte("<Payment><ID>p-1</ID></Payment>")
	d := Digest(payload)

	res := j.Begin("k1", "ProcessPayment", d)
	if res.Decision != BeginNew {
		t.Fatalf("Begin = %v, want BeginNew", res.Decision)
	}
	if res.Seq != 1 {
		t.Fatalf("Seq = %d, want 1", res.Seq)
	}
	if err := j.MarkExecuting("k1"); err != nil {
		t.Fatalf("MarkExecuting: %v", err)
	}
	reply := []byte("<Receipt/>")
	if err := j.MarkExecuted("k1", reply, ""); err != nil {
		t.Fatalf("MarkExecuted: %v", err)
	}
	if err := j.MarkCommitted("k1"); err != nil {
		t.Fatalf("MarkCommitted: %v", err)
	}

	// A retry with the same key and payload returns the cached reply.
	res = j.Begin("k1", "ProcessPayment", d)
	if res.Decision != BeginCached {
		t.Fatalf("retry Begin = %v, want BeginCached", res.Decision)
	}
	if !bytes.Equal(res.Reply, reply) {
		t.Fatalf("cached reply = %q, want %q", res.Reply, reply)
	}
}

func TestBeginConflictOnDigestMismatch(t *testing.T) {
	j := New("peer-1", "addr-1")
	j.Begin("k1", "Op", Digest([]byte("a")))
	res := j.Begin("k1", "Op", Digest([]byte("b")))
	if res.Decision != BeginConflict {
		t.Fatalf("Begin = %v, want BeginConflict", res.Decision)
	}
}

func TestCachedApplicationErrorReplays(t *testing.T) {
	j := New("peer-1", "addr-1")
	d := Digest([]byte("x"))
	j.Begin("k1", "Op", d)
	if err := j.MarkExecuting("k1"); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkExecuted("k1", nil, "insufficient funds"); err != nil {
		t.Fatal(err)
	}
	if err := j.MarkCommitted("k1"); err != nil {
		t.Fatal(err)
	}
	res := j.Begin("k1", "Op", d)
	if res.Decision != BeginCached || res.AppErr != "insufficient funds" {
		t.Fatalf("Begin = %+v, want cached app error", res)
	}
}

func TestExecutingEntryPoisonsOnRevisit(t *testing.T) {
	j := New("peer-1", "addr-1")
	d := Digest([]byte("x"))
	j.Begin("k1", "Op", d)
	if err := j.MarkExecuting("k1"); err != nil {
		t.Fatal(err)
	}
	// A Begin observing Executing models a post-crash revisit: the
	// outcome is unknowable, so the entry poisons and stays poisoned.
	res := j.Begin("k1", "Op", d)
	if res.Decision != BeginPoisoned {
		t.Fatalf("Begin = %v, want BeginPoisoned", res.Decision)
	}
	res = j.Begin("k1", "Op", d)
	if res.Decision != BeginPoisoned {
		t.Fatalf("second Begin = %v, want BeginPoisoned (permanent)", res.Decision)
	}
}

func TestAbortedEntryIsReowned(t *testing.T) {
	j := New("peer-1", "addr-1")
	d := Digest([]byte("x"))
	j.Begin("k1", "Op", d)
	if err := j.MarkAborted("k1"); err != nil {
		t.Fatal(err)
	}
	res := j.Begin("k1", "Op", d)
	if res.Decision != BeginNew {
		t.Fatalf("Begin after abort = %v, want BeginNew (re-own)", res.Decision)
	}
	e, _ := j.Entry("k1")
	if e.Status != StatusPrepared || e.Origin != "peer-1" {
		t.Fatalf("entry = %+v, want re-owned prepared", e)
	}
}

func TestForeignPreparedIsPending(t *testing.T) {
	j := New("peer-2", "addr-2")
	d := Digest([]byte("x"))
	j.ApplyPrepare(Entry{Seq: 7, Key: "k1", Op: "Op", Digest: d, Origin: "peer-1", OriginAddr: "addr-1", Status: StatusPrepared})
	res := j.Begin("k1", "Op", d)
	if res.Decision != BeginPending {
		t.Fatalf("Begin = %v, want BeginPending", res.Decision)
	}
	if res.Origin != "peer-1" || res.OriginAddr != "addr-1" {
		t.Fatalf("pending origin = %s/%s, want peer-1/addr-1", res.Origin, res.OriginAddr)
	}
	// Sequence numbering must continue above the replicated claim.
	if r2 := j.Begin("k2", "Op", d); r2.Seq <= 7 {
		t.Fatalf("new seq = %d, want > 7", r2.Seq)
	}
}

// TestResolveRace pins the deposed-coordinator race: exactly one of
// the origin's MarkExecuting and a remote Resolve wins, never both.
func TestResolveRace(t *testing.T) {
	for i := 0; i < 200; i++ {
		j := New("peer-1", "addr-1")
		j.Begin("k1", "Op", Digest([]byte("x")))
		var wg sync.WaitGroup
		wg.Add(2)
		var execErr error
		var resolved Status
		go func() { defer wg.Done(); execErr = j.MarkExecuting("k1") }()
		go func() { defer wg.Done(); resolved = j.Resolve("k1") }()
		wg.Wait()
		execWon := execErr == nil
		abortWon := resolved == StatusAborted
		if execWon == abortWon {
			t.Fatalf("iteration %d: execWon=%v abortWon=%v (resolved=%v), want exactly one winner", i, execWon, abortWon, resolved)
		}
	}
}

func TestResolveUnknownKeyIsAborted(t *testing.T) {
	j := New("peer-1", "addr-1")
	if got := j.Resolve("nope"); got != StatusAborted {
		t.Fatalf("Resolve(unknown) = %v, want aborted", got)
	}
}

func TestApplyCommitThenCacheHit(t *testing.T) {
	j := New("peer-2", "addr-2")
	d := Digest([]byte("x"))
	j.ApplyCommit(Entry{Seq: 3, Key: "k1", Op: "Op", Digest: d, Origin: "peer-1", Status: StatusCommitted, Reply: []byte("<R/>")})
	res := j.Begin("k1", "Op", d)
	if res.Decision != BeginCached || string(res.Reply) != "<R/>" {
		t.Fatalf("Begin = %+v, want cached replicated reply", res)
	}
}

func TestApplyPrepareAdoptsNewOriginOverAborted(t *testing.T) {
	j := New("peer-2", "addr-2")
	d := Digest([]byte("x"))
	j.ApplyPrepare(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-1", Status: StatusPrepared})
	j.ApplyAbort(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-1", Status: StatusAborted})
	// peer-3 re-owns and replicates a fresh PREPARE.
	j.ApplyPrepare(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-3", OriginAddr: "addr-3", Status: StatusPrepared})
	e, _ := j.Entry("k1")
	if e.Status != StatusPrepared || e.Origin != "peer-3" {
		t.Fatalf("entry = %+v, want re-owned by peer-3", e)
	}
	// But a replicated PREPARE never regresses committed knowledge.
	j.ApplyCommit(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-3", Status: StatusCommitted, Reply: []byte("<R/>")})
	j.ApplyPrepare(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-4", Status: StatusPrepared})
	e, _ = j.Entry("k1")
	if e.Status != StatusCommitted {
		t.Fatalf("entry status = %v, want committed preserved", e.Status)
	}
}

func TestCompaction(t *testing.T) {
	j := New("peer-1", "addr-1")
	j.SetCompactionThreshold(8)
	for i := 0; i < 20; i++ {
		key := fmt.Sprintf("k%d", i)
		payload := []byte(fmt.Sprintf("<P>%d</P>", i))
		d := Digest(payload)
		if res := j.Begin(key, "Op", d); res.Decision != BeginNew {
			t.Fatalf("Begin(%s) = %v", key, res.Decision)
		}
		if err := j.MarkExecuting(key); err != nil {
			t.Fatal(err)
		}
		if err := j.MarkExecuted(key, []byte("<R>"+key+"</R>"), ""); err != nil {
			t.Fatal(err)
		}
		if err := j.MarkCommitted(key); err != nil {
			t.Fatal(err)
		}
	}
	st := j.Stats()
	if st.Snapshotted == 0 {
		t.Fatalf("stats = %+v, want snapshot compaction to have run", st)
	}
	if st.Live+st.Snapshotted != 20 {
		t.Fatalf("live+snap = %d, want 20", st.Live+st.Snapshotted)
	}
	// Snapshotted keys still dedupe with their cached reply.
	res := j.Begin("k0", "Op", Digest([]byte("<P>0</P>")))
	if res.Decision != BeginCached || string(res.Reply) != "<R>k0</R>" {
		t.Fatalf("Begin(snapshotted) = %+v, want cached", res)
	}
	// And still detect digest conflicts.
	if res := j.Begin("k0", "Op", Digest([]byte("different"))); res.Decision != BeginConflict {
		t.Fatalf("Begin(snapshotted, bad digest) = %v, want conflict", res.Decision)
	}
	if j.HighestCommitted() != 20 {
		t.Fatalf("HighestCommitted = %d, want 20", j.HighestCommitted())
	}
}

func TestStateTransferRoundTrip(t *testing.T) {
	src := New("peer-1", "addr-1")
	src.SetCompactionThreshold(4)
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		d := Digest([]byte(key))
		src.Begin(key, "Op", d)
		if err := src.MarkExecuting(key); err != nil {
			t.Fatal(err)
		}
		if err := src.MarkExecuted(key, []byte("<R>"+key+"</R>"), ""); err != nil {
			t.Fatal(err)
		}
		if err := src.MarkCommitted(key); err != nil {
			t.Fatal(err)
		}
	}
	src.Begin("pending", "Op", Digest([]byte("pending")))

	data, err := src.EncodeState()
	if err != nil {
		t.Fatalf("EncodeState: %v", err)
	}
	dst := New("peer-2", "addr-2")
	applied, err := dst.MergeState(data)
	if err != nil {
		t.Fatalf("MergeState: %v", err)
	}
	if applied == 0 {
		t.Fatal("MergeState applied nothing")
	}
	// The catch-up peer now answers retries from cache.
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("k%d", i)
		res := dst.Begin(key, "Op", Digest([]byte(key)))
		if res.Decision != BeginCached || string(res.Reply) != "<R>"+key+"</R>" {
			t.Fatalf("dst.Begin(%s) = %+v, want cached", key, res)
		}
	}
	// The foreign pending claim transferred as pending, not owned.
	res := dst.Begin("pending", "Op", Digest([]byte("pending")))
	if res.Decision != BeginPending || res.Origin != "peer-1" {
		t.Fatalf("dst.Begin(pending) = %+v, want pending on peer-1", res)
	}
	if dst.HighestCommitted() != src.HighestCommitted() {
		t.Fatalf("HighestCommitted: dst=%d src=%d", dst.HighestCommitted(), src.HighestCommitted())
	}
	// Merging the same state again is idempotent.
	if again, _ := dst.MergeState(data); again != 0 {
		t.Fatalf("second MergeState applied %d, want 0", again)
	}
}

func TestMergeStateNeverRegresses(t *testing.T) {
	j := New("peer-2", "addr-2")
	d := Digest([]byte("x"))
	j.ApplyCommit(Entry{Seq: 1, Key: "k1", Digest: d, Status: StatusCommitted, Reply: []byte("<R/>")})

	stale := New("peer-3", "addr-3")
	stale.ApplyPrepare(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-1", Status: StatusPrepared})
	data, err := stale.EncodeState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.MergeState(data); err != nil {
		t.Fatal(err)
	}
	e, _ := j.Entry("k1")
	if e.Status != StatusCommitted {
		t.Fatalf("status = %v, want committed preserved over stale prepared", e.Status)
	}
}

func TestContextKeyRoundTrip(t *testing.T) {
	ctx := context.Background()
	if KeyFromContext(ctx) != "" {
		t.Fatal("empty context should carry no key")
	}
	ctx = ContextWithKey(ctx, "msg-42")
	if got := KeyFromContext(ctx); got != "msg-42" {
		t.Fatalf("KeyFromContext = %q, want msg-42", got)
	}
}

func TestMarkExecutingRefusesForeignOrAborted(t *testing.T) {
	j := New("peer-2", "addr-2")
	d := Digest([]byte("x"))
	j.ApplyPrepare(Entry{Seq: 1, Key: "k1", Digest: d, Origin: "peer-1", Status: StatusPrepared})
	if err := j.MarkExecuting("k1"); err == nil {
		t.Fatal("MarkExecuting on a foreign claim must fail")
	}
	j2 := New("peer-1", "addr-1")
	j2.Begin("k1", "Op", d)
	if err := j2.MarkAborted("k1"); err != nil {
		t.Fatal(err)
	}
	if err := j2.MarkExecuting("k1"); err == nil {
		t.Fatal("MarkExecuting on an aborted entry must fail")
	}
}

func BenchmarkJournalBeginCommit(b *testing.B) {
	j := New("peer-1", "addr-1")
	payload := []byte("<Payment><ID>p</ID></Payment>")
	d := Digest(payload)
	reply := []byte("<Receipt/>")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i)
		j.Begin(key, "Op", d)
		_ = j.MarkExecuting(key)
		_ = j.MarkExecuted(key, reply, "")
		_ = j.MarkCommitted(key)
	}
}

func BenchmarkJournalCachedHit(b *testing.B) {
	j := New("peer-1", "addr-1")
	d := Digest([]byte("x"))
	j.Begin("k1", "Op", d)
	_ = j.MarkExecuting("k1")
	_ = j.MarkExecuted("k1", []byte("<R/>"), "")
	_ = j.MarkCommitted("k1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := j.Begin("k1", "Op", d); res.Decision != BeginCached {
			b.Fatalf("decision = %v", res.Decision)
		}
	}
}
