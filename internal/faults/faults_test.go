package faults

import (
	"context"
	"errors"
	"testing"
	"time"

	"whisper/internal/backend"
	"whisper/internal/simnet"
)

type fakeCrasher struct{ crashed bool }

func (f *fakeCrasher) Crash() error { f.crashed = true; return nil }

func TestScheduleRunsActionsInOrder(t *testing.T) {
	var order []string
	s := NewSchedule()
	s.Add(20*time.Millisecond, "second", func() error { order = append(order, "b"); return nil })
	s.Add(0, "first", func() error { order = append(order, "a"); return nil })
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Errorf("order = %v", order)
	}
	events := s.Events()
	if len(events) != 2 || events[0].Label != "first" || events[1].Label != "second" {
		t.Errorf("events = %+v", events)
	}
}

func TestScheduleAbsoluteDeadlinesNoDrift(t *testing.T) {
	// Actions added out of At order, with a slow first action. Each
	// action fires at the absolute deadline start+At, so the slow Do
	// must not push later deadlines out (no cumulative drift): the
	// second action's deadline has already passed when the first
	// completes, and the third still fires at start+60ms.
	var order []string
	s := NewSchedule()
	s.Add(60*time.Millisecond, "third", func() error { order = append(order, "c"); return nil })
	s.Add(0, "first", func() error {
		order = append(order, "a")
		time.Sleep(40 * time.Millisecond)
		return nil
	})
	s.Add(30*time.Millisecond, "second", func() error { order = append(order, "b"); return nil })

	start := time.Now()
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
	events := s.Events()
	// The second action's At (30ms) elapsed while the first was busy;
	// with absolute deadlines it runs immediately at ~40ms. A drifting
	// implementation would add the full 30ms again (~70ms).
	if got := events[1].Applied.Sub(start); got >= 55*time.Millisecond {
		t.Errorf("second action applied after %v, want immediately after the slow first (~40ms)", got)
	}
	// The third action keeps its absolute deadline.
	if got := events[2].Applied.Sub(start); got < 60*time.Millisecond {
		t.Errorf("third action applied after %v, want >= 60ms", got)
	}
}

func TestScheduleCrash(t *testing.T) {
	c := &fakeCrasher{}
	s := NewSchedule().AddCrash(0, "replica", c)
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !c.crashed {
		t.Error("crash not applied")
	}
}

func TestScheduleOutageAndRepair(t *testing.T) {
	db := backend.NewOperationalDB(backend.SeedStudents(3, 1), 0)
	s := NewSchedule().AddOutage(0, 30*time.Millisecond, "db", db)
	done := s.RunAsync(context.Background())
	time.Sleep(10 * time.Millisecond)
	if db.Available() {
		t.Error("db should be down during outage window")
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	if !db.Available() {
		t.Error("db should be repaired after window")
	}
}

func TestSchedulePartitionWindow(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	t.Cleanup(func() { _ = net.Close() })
	a, err := net.NewPort("a")
	if err != nil {
		t.Fatalf("port: %v", err)
	}
	b, err := net.NewPort("b")
	if err != nil {
		t.Fatalf("port: %v", err)
	}

	s := NewSchedule().AddPartition(0, 50*time.Millisecond, net, "a", "b")
	done := s.RunAsync(context.Background())
	time.Sleep(10 * time.Millisecond)
	_ = a.Send("b", simnet.Message{Proto: "t"})
	select {
	case <-b.Recv():
		t.Error("message crossed partition")
	case <-time.After(20 * time.Millisecond):
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v", err)
	}
	_ = a.Send("b", simnet.Message{Proto: "t"})
	select {
	case <-b.Recv():
	case <-time.After(time.Second):
		t.Error("message lost after heal")
	}
}

func TestScheduleAbortsOnContext(t *testing.T) {
	s := NewSchedule().Add(time.Hour, "never", func() error { return nil })
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Run(ctx); err == nil {
		t.Error("expected context error")
	}
	if len(s.Events()) != 0 {
		t.Error("aborted schedule should record no events")
	}
}

func TestScheduleRecordsActionErrors(t *testing.T) {
	boom := errors.New("boom")
	s := NewSchedule().Add(0, "explode", func() error { return boom })
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	events := s.Events()
	if len(events) != 1 || !errors.Is(events[0].Err, boom) {
		t.Errorf("events = %+v", events)
	}
}

func TestScheduleLinkDelayAndIsolation(t *testing.T) {
	net := simnet.NewNetwork(simnet.WithLatency(simnet.ZeroLatency()))
	t.Cleanup(func() { _ = net.Close() })
	if _, err := net.NewPort("a"); err != nil {
		t.Fatalf("port: %v", err)
	}
	if _, err := net.NewPort("b"); err != nil {
		t.Fatalf("port: %v", err)
	}
	s := NewSchedule().
		AddLinkDelay(0, 10*time.Millisecond, net, "a", "b", 5*time.Millisecond).
		AddIsolation(10*time.Millisecond, 20*time.Millisecond, net, "a")
	if err := s.Run(context.Background()); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := len(s.Events()); got != 4 {
		t.Errorf("events = %d, want 4", got)
	}
}
