// Package faults provides deterministic fault injection for Whisper
// experiments: timed schedules of crashes, partitions, link
// degradation and backend outages, executed against a simulated
// network and crashable components. The failover experiments (E3, E6
// in DESIGN.md) are driven through this package so the same fault
// scenarios run identically in tests and benchmarks.
package faults

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"whisper/internal/simnet"
)

// Crasher is anything that can be crashed (b-peers implement it).
type Crasher interface {
	Crash() error
}

// Availabler is anything whose availability can be toggled (backends
// implement it).
type Availabler interface {
	SetAvailable(up bool)
}

// Action is one scheduled fault event.
type Action struct {
	// At is the offset from schedule start.
	At time.Duration
	// Label describes the action in the event log.
	Label string
	// Do applies the fault (or repair).
	Do func() error
}

// Event records an executed action.
type Event struct {
	// At is the scheduled offset.
	At time.Duration
	// Applied is the wall-clock execution time.
	Applied time.Time
	// Label describes the action.
	Label string
	// Err is the action's result.
	Err error
}

// Schedule is an ordered fault plan. Build it with the Add* helpers,
// then Run it once.
type Schedule struct {
	mu      sync.Mutex
	actions []Action
	events  []Event
	clock   simnet.Clock
}

// NewSchedule creates an empty schedule driven by the wall clock.
func NewSchedule() *Schedule { return &Schedule{clock: simnet.WallClock{}} }

// WithClock injects the schedule's time source (virtual clocks make
// the fault plan part of a fully simulated run). Returns s.
func (s *Schedule) WithClock(c simnet.Clock) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.clock = c
	return s
}

// Add appends a raw action.
func (s *Schedule) Add(at time.Duration, label string, do func() error) *Schedule {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.actions = append(s.actions, Action{At: at, Label: label, Do: do})
	return s
}

// AddCrash schedules a component crash.
func (s *Schedule) AddCrash(at time.Duration, label string, c Crasher) *Schedule {
	return s.Add(at, "crash "+label, c.Crash)
}

// AddOutage schedules a backend outage and its repair.
func (s *Schedule) AddOutage(from, to time.Duration, label string, a Availabler) *Schedule {
	s.Add(from, "outage "+label, func() error { a.SetAvailable(false); return nil })
	s.Add(to, "repair "+label, func() error { a.SetAvailable(true); return nil })
	return s
}

// AddPartition schedules a network partition between two addresses and
// its healing.
func (s *Schedule) AddPartition(from, to time.Duration, net *simnet.Network, a, b string) *Schedule {
	s.Add(from, fmt.Sprintf("partition %s|%s", a, b), func() error { net.Partition(a, b); return nil })
	s.Add(to, fmt.Sprintf("heal %s|%s", a, b), func() error { net.Heal(a, b); return nil })
	return s
}

// AddIsolation schedules full isolation of one address and its
// rejoining.
func (s *Schedule) AddIsolation(from, to time.Duration, net *simnet.Network, addr string) *Schedule {
	s.Add(from, "isolate "+addr, func() error { net.Isolate(addr); return nil })
	s.Add(to, "rejoin "+addr, func() error { net.Rejoin(addr); return nil })
	return s
}

// AddLinkDelay schedules an extra link delay between two addresses for
// a window.
func (s *Schedule) AddLinkDelay(from, to time.Duration, net *simnet.Network, a, b string, d time.Duration) *Schedule {
	s.Add(from, fmt.Sprintf("degrade %s|%s", a, b), func() error { net.SetLinkDelay(a, b, d); return nil })
	s.Add(to, fmt.Sprintf("restore %s|%s", a, b), func() error { net.SetLinkDelay(a, b, 0); return nil })
	return s
}

// Len returns the number of scheduled actions.
func (s *Schedule) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.actions)
}

// Run executes the schedule relative to now, blocking until every
// action ran or the context is cancelled. Actions run in At order
// regardless of the order they were added in, and each fires at the
// absolute deadline start+At: a slow Do delays later actions past
// their deadlines but never shifts the deadlines themselves, so there
// is no cumulative drift.
func (s *Schedule) Run(ctx context.Context) error {
	s.mu.Lock()
	actions := append([]Action(nil), s.actions...)
	clock := s.clock
	s.mu.Unlock()
	sort.SliceStable(actions, func(i, j int) bool { return actions[i].At < actions[j].At })

	start := clock.Now()
	for _, a := range actions {
		deadline := start.Add(a.At)
		if wait := deadline.Sub(clock.Now()); wait > 0 {
			t := time.NewTimer(wait)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("faults: schedule aborted before %q: %w", a.Label, ctx.Err())
			}
		}
		err := a.Do()
		s.mu.Lock()
		s.events = append(s.events, Event{At: a.At, Applied: clock.Now(), Label: a.Label, Err: err})
		s.mu.Unlock()
	}
	return nil
}

// RunAsync executes the schedule in a background goroutine and returns
// a channel that yields the terminal error (nil on completion).
func (s *Schedule) RunAsync(ctx context.Context) <-chan error {
	done := make(chan error, 1)
	go func() { done <- s.Run(ctx) }()
	return done
}

// Events returns the executed actions so far.
func (s *Schedule) Events() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.events...)
}
