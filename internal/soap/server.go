package soap

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"whisper/internal/replog"
	"whisper/internal/trace"
)

// OperationHandler processes one SOAP operation: it receives the raw
// body XML of the request and returns an XML-marshalable response
// payload. Returning an error produces a soap:Server fault; returning
// a *Fault directly preserves its code.
type OperationHandler func(ctx context.Context, bodyXML []byte) (any, error)

// Server is an http.Handler exposing SOAP operations. Requests are
// dispatched on the local name of the body's root element, falling
// back to the SOAPAction header.
type Server struct {
	mu         sync.RWMutex
	handlers   map[string]OperationHandler
	understood map[string]bool
	tracer     *trace.Tracer
}

var _ http.Handler = (*Server)(nil)

// NewServer creates an empty SOAP server. The TraceContext and
// MessageID headers are understood out of the box (clients may mark
// them mustUnderstand).
func NewServer() *Server {
	return &Server{
		handlers: make(map[string]OperationHandler),
		understood: map[string]bool{
			trace.SoapHeaderElement: true,
			MessageIDHeaderElement:  true,
		},
	}
}

// SetTracer makes the server record one span per SOAP operation,
// parented under the client's TraceContext header when present. Nil
// disables (the default).
func (s *Server) SetTracer(t *trace.Tracer) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tracer = t
}

// Register installs a handler for the operation name (the body root's
// local element name, conventionally the WSDL operation's input
// element).
func (s *Server) Register(operation string, h OperationHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[operation] = h
}

// Understand declares that the server understands the named header
// block (by local element name); mustUnderstand="1" blocks that are
// NOT declared produce a soap:MustUnderstand fault, per SOAP 1.1 §4.2.3.
func (s *Server) Understand(headerLocalName string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.understood[headerLocalName] = true
}

// Operations lists registered operation names.
func (s *Server) Operations() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.handlers))
	for op := range s.handlers {
		out = append(out, op)
	}
	return out
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeFault(w, http.StatusMethodNotAllowed, ClientFault("SOAP requires POST"))
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		s.writeFault(w, http.StatusBadRequest, ClientFault("read request: "+err.Error()))
		return
	}
	env, err := Decode(data)
	if err != nil {
		s.writeFault(w, http.StatusBadRequest, ClientFault(err.Error()))
		return
	}
	for _, h := range env.Headers {
		if !h.MustUnderstand {
			continue
		}
		s.mu.RLock()
		ok := s.understood[h.Name.Local]
		s.mu.RUnlock()
		if !ok {
			s.writeFault(w, http.StatusInternalServerError, &Fault{
				Code:   FaultCodeMustUnderstand,
				Reason: fmt.Sprintf("header %q not understood", h.Name.Local),
			})
			return
		}
	}
	op := env.BodyRoot.Local
	if op == "" {
		op = strings.Trim(r.Header.Get("SOAPAction"), `"`)
	}
	s.mu.RLock()
	h := s.handlers[op]
	tracer := s.tracer
	s.mu.RUnlock()
	if h == nil {
		s.writeFault(w, http.StatusNotFound, ClientFault(fmt.Sprintf("unknown operation %q", op)))
		return
	}
	ctx := r.Context()
	// The client's MessageID becomes the idempotency key for everything
	// downstream of this hop (proxy retries, b-peer journaling).
	if id, ok := ExtractMessageID(env); ok {
		ctx = replog.ContextWithKey(ctx, id)
	}
	var span *trace.Span
	if tracer != nil {
		parent, _ := ExtractTrace(env)
		span = tracer.StartRemote(parent, "soap."+op)
		ctx = trace.ContextWith(ctx, span)
		defer span.End()
	}
	resp, err := h(ctx, env.BodyXML)
	span.SetError(err)
	if err != nil {
		if f, ok := err.(*Fault); ok {
			s.writeFault(w, http.StatusInternalServerError, f)
			return
		}
		s.writeFault(w, http.StatusInternalServerError, ServerFault(err))
		return
	}
	// A []byte response is pre-marshaled body XML (the proxy path
	// passes peer payloads through untouched); anything else is
	// XML-marshaled.
	var out []byte
	if raw, ok := resp.([]byte); ok {
		out = EncodeRaw(raw)
	} else if out, err = Encode(resp); err != nil {
		s.writeFault(w, http.StatusInternalServerError, ServerFault(err))
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	_, _ = w.Write(out)
}

func (s *Server) writeFault(w http.ResponseWriter, status int, f *Fault) {
	body, err := EncodeFault(f)
	if err != nil {
		http.Error(w, f.Reason, status)
		return
	}
	w.Header().Set("Content-Type", "text/xml; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(body)
}
