package soap

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func newTestService(t *testing.T) (*Server, *Client) {
	t.Helper()
	srv := NewServer()
	srv.Register("StudentInformation", func(_ context.Context, body []byte) (any, error) {
		env := &Envelope{BodyXML: body}
		var req studentRequest
		if err := env.DecodeBody(&req); err != nil {
			return nil, ClientFault(err.Error())
		}
		if req.StudentID == "" {
			return nil, ClientFault("missing StudentID")
		}
		if req.StudentID == "unknown" {
			return nil, fmt.Errorf("student %q not found", req.StudentID)
		}
		return studentResponse{Name: "Maria Silva", Program: "Informatics"}, nil
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, NewClient(ts.URL)
}

func TestHTTPCallSuccess(t *testing.T) {
	_, client := newTestService(t)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var resp studentResponse
	if err := client.Call(ctx, "StudentInformation", studentRequest{StudentID: "S1"}, &resp); err != nil {
		t.Fatalf("call: %v", err)
	}
	if resp.Name != "Maria Silva" || resp.Program != "Informatics" {
		t.Errorf("resp = %+v", resp)
	}
}

func TestHTTPCallServerFault(t *testing.T) {
	_, client := newTestService(t)
	ctx := context.Background()
	err := client.Call(ctx, "StudentInformation", studentRequest{StudentID: "unknown"}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Code != FaultCodeServer {
		t.Errorf("fault code = %q, want %q", f.Code, FaultCodeServer)
	}
}

func TestHTTPCallClientFault(t *testing.T) {
	_, client := newTestService(t)
	err := client.Call(context.Background(), "StudentInformation", studentRequest{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
	if f.Code != FaultCodeClient {
		t.Errorf("fault code = %q, want %q", f.Code, FaultCodeClient)
	}
}

func TestHTTPUnknownOperation(t *testing.T) {
	_, client := newTestService(t)
	type nope struct {
		XMLName struct{} `xml:"NoSuchOperation"`
	}
	err := client.Call(context.Background(), "NoSuchOperation", nope{}, nil)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("err = %v, want *Fault", err)
	}
}

func TestHTTPRejectsGet(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("status = %d, want 405", resp.StatusCode)
	}
}

func TestHTTPCallContextCancelled(t *testing.T) {
	srv := NewServer()
	srv.Register("Slow", func(ctx context.Context, _ []byte) (any, error) {
		select {
		case <-time.After(5 * time.Second):
		case <-ctx.Done():
		}
		return studentResponse{}, nil
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	type slow struct {
		XMLName struct{} `xml:"Slow"`
	}
	if err := client.Call(ctx, "Slow", slow{}, nil); err == nil {
		t.Error("expected context deadline error")
	}
}

func TestHTTPCallDeadEndpoint(t *testing.T) {
	client := NewClient("http://127.0.0.1:1/soap")
	err := client.Call(context.Background(), "X", studentRequest{StudentID: "1"}, nil)
	if err == nil {
		t.Error("expected connection error")
	}
}

func TestServerOperations(t *testing.T) {
	srv, _ := newTestService(t)
	ops := srv.Operations()
	if len(ops) != 1 || ops[0] != "StudentInformation" {
		t.Errorf("operations = %v", ops)
	}
}
