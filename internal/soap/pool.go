package soap

import (
	"bytes"
	"sync"
)

// bufPool recycles the scratch buffers used to assemble envelopes.
// Encoding sits on the invocation hot path (every proxy request wraps
// at least two envelopes), so assembling into a pooled buffer and
// copying out an exact-size slice replaces the buffer's grow-and-
// discard garbage with one right-sized allocation per envelope.
var bufPool = sync.Pool{
	New: func() any { return new(bytes.Buffer) },
}

// maxPooledBuf bounds what goes back into the pool: a rare huge
// payload must not pin its buffer for the rest of the process.
const maxPooledBuf = 1 << 16

func getBuf() *bytes.Buffer {
	b := bufPool.Get().(*bytes.Buffer)
	b.Reset()
	return b
}

// putBuf returns the buffer to the pool and hands back an exact-size
// copy of its contents (the only allocation the caller keeps).
func putBuf(b *bytes.Buffer) []byte {
	out := append([]byte(nil), b.Bytes()...)
	if b.Cap() <= maxPooledBuf {
		bufPool.Put(b)
	}
	return out
}
