package soap

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"whisper/internal/replog"
)

func TestMessageIDHeaderRoundTrip(t *testing.T) {
	block := MessageIDHeaderBlock("msg-abc-1")
	env := EncodeRawWithHeaders([]byte("<Ping/>"), block)
	dec, err := Decode(env)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	id, ok := ExtractMessageID(dec)
	if !ok || id != "msg-abc-1" {
		t.Fatalf("ExtractMessageID = (%q, %v), want msg-abc-1", id, ok)
	}
}

func TestMessageIDHeaderBlockEmpty(t *testing.T) {
	if MessageIDHeaderBlock("") != nil {
		t.Fatal("empty id must produce no header")
	}
}

func TestNewMessageIDUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := NewMessageID()
		if seen[id] {
			t.Fatalf("duplicate message ID %q", id)
		}
		seen[id] = true
	}
}

// TestClientMintsMessageIDAndServerInstallsKey verifies the end-to-end
// key plumbing: the client stamps a MessageID header on every call, and
// the server surfaces it to handlers as the replog idempotency key.
func TestClientMintsMessageIDAndServerInstallsKey(t *testing.T) {
	var gotKeys []string
	srv := NewServer()
	srv.Register("Ping", func(ctx context.Context, bodyXML []byte) (any, error) {
		gotKeys = append(gotKeys, replog.KeyFromContext(ctx))
		return []byte("<Pong/>"), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	c := NewClient(ts.URL)
	// A context without a key: the client mints a fresh MessageID.
	if _, err := c.CallRaw(context.Background(), "Ping", []byte("<Ping/>")); err != nil {
		t.Fatalf("call: %v", err)
	}
	// A context that already carries a key (application-level retry):
	// the client forwards it unchanged, twice.
	rctx := replog.ContextWithKey(context.Background(), "retry-key-7")
	for i := 0; i < 2; i++ {
		if _, err := c.CallRaw(rctx, "Ping", []byte("<Ping/>")); err != nil {
			t.Fatalf("retry call %d: %v", i, err)
		}
	}
	if len(gotKeys) != 3 {
		t.Fatalf("handler saw %d keys, want 3", len(gotKeys))
	}
	if gotKeys[0] == "" || !strings.HasPrefix(gotKeys[0], "msg-") {
		t.Errorf("minted key = %q, want msg-… prefix", gotKeys[0])
	}
	if gotKeys[1] != "retry-key-7" || gotKeys[2] != "retry-key-7" {
		t.Errorf("retry keys = %q/%q, want retry-key-7 both (key stable across retries)", gotKeys[1], gotKeys[2])
	}
}

func TestMessageIDMustUnderstandAccepted(t *testing.T) {
	srv := NewServer()
	srv.Register("Ping", func(ctx context.Context, bodyXML []byte) (any, error) {
		return []byte("<Pong/>"), nil
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A mustUnderstand MessageID header must not fault: the server
	// declares it understood out of the box.
	block := MustUnderstandBlock(MessageIDHeaderElement, "msg-1")
	env := EncodeRawWithHeaders([]byte("<Ping/>"), block)
	resp, err := http.Post(ts.URL, "text/xml", strings.NewReader(string(env)))
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
}
