package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
)

// HeaderBlock is one child element of soap:Header.
type HeaderBlock struct {
	// Name is the block's qualified element name.
	Name xml.Name
	// MustUnderstand mirrors the soap:mustUnderstand="1" attribute.
	MustUnderstand bool
	// XML is the raw block, suitable for re-emission.
	XML []byte
}

// EncodeWithHeaders wraps the payload in an envelope carrying the
// given raw header blocks.
func EncodeWithHeaders(payload any, headerBlocks ...[]byte) ([]byte, error) {
	body, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal payload: %w", err)
	}
	return EncodeRawWithHeaders(body, headerBlocks...), nil
}

// EncodeRawWithHeaders wraps pre-marshaled body XML in an envelope
// carrying the given raw header blocks (nil blocks are skipped).
func EncodeRawWithHeaders(bodyXML []byte, headerBlocks ...[]byte) []byte {
	b := getBuf()
	b.WriteString(xml.Header)
	b.WriteString(`<soap:Envelope xmlns:soap="` + NS + `">`)
	hasBlocks := false
	for _, h := range headerBlocks {
		if len(h) > 0 {
			if !hasBlocks {
				b.WriteString(`<soap:Header>`)
				hasBlocks = true
			}
			b.Write(h)
		}
	}
	if hasBlocks {
		b.WriteString(`</soap:Header>`)
	}
	b.WriteString(`<soap:Body>`)
	b.Write(bodyXML)
	b.WriteString(`</soap:Body></soap:Envelope>`)
	return putBuf(b)
}

// MustUnderstandBlock builds a raw header block with
// soap:mustUnderstand="1".
func MustUnderstandBlock(localName, content string) []byte {
	return []byte(`<` + localName + ` soap:mustUnderstand="1">` + content + `</` + localName + `>`)
}

// parseHeaderBlocks extracts the top-level children of a soap:Header
// fragment. The fragment may reference the "soap" prefix without
// redeclaring it, so it is re-wrapped with the declaration first.
func parseHeaderBlocks(frag []byte) ([]HeaderBlock, error) {
	if len(bytes.TrimSpace(frag)) == 0 {
		return nil, nil
	}
	wrapped := append([]byte(`<w xmlns:soap="`+NS+`">`), frag...)
	wrapped = append(wrapped, []byte(`</w>`)...)
	dec := xml.NewDecoder(bytes.NewReader(wrapped))
	blocks := make([]HeaderBlock, 0, 4) // envelopes carry a handful of header blocks at most
	depth := 0
	var cur *HeaderBlock
	var raw bytes.Buffer
	enc := xml.NewEncoder(&raw)
	for {
		tok, err := dec.Token()
		if err != nil {
			break
		}
		switch el := tok.(type) {
		case xml.StartElement:
			depth++
			if depth == 2 { // direct child of the wrapper
				cur = &HeaderBlock{Name: el.Name}
				for _, a := range el.Attr {
					if a.Name.Local == "mustUnderstand" &&
						(a.Name.Space == NS || a.Name.Space == "" || a.Name.Space == "soap") &&
						(a.Value == "1" || a.Value == "true") {
						cur.MustUnderstand = true
					}
				}
				raw.Reset()
			}
			if cur != nil {
				if err := enc.EncodeToken(sanitize(el)); err != nil {
					return nil, fmt.Errorf("soap: header block: %w", err)
				}
			}
		case xml.EndElement:
			if cur != nil {
				if err := enc.EncodeToken(xml.EndElement{Name: xml.Name{Local: el.Name.Local}}); err != nil {
					return nil, fmt.Errorf("soap: header block: %w", err)
				}
			}
			if depth == 2 && cur != nil {
				if err := enc.Flush(); err != nil {
					return nil, fmt.Errorf("soap: header block: %w", err)
				}
				cur.XML = append([]byte(nil), raw.Bytes()...)
				blocks = append(blocks, *cur)
				cur = nil
			}
			depth--
		default:
			if cur != nil {
				if err := enc.EncodeToken(tok); err != nil {
					return nil, fmt.Errorf("soap: header block: %w", err)
				}
			}
		}
	}
	return blocks, nil
}

// sanitize strips namespace attributes so re-encoded blocks stay
// self-contained.
func sanitize(el xml.StartElement) xml.StartElement {
	out := xml.StartElement{Name: xml.Name{Local: el.Name.Local}}
	for _, a := range el.Attr {
		if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
			continue
		}
		out.Attr = append(out.Attr, xml.Attr{Name: xml.Name{Local: a.Name.Local}, Value: a.Value})
	}
	return out
}
