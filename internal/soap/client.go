package soap

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"whisper/internal/replog"
	"whisper/internal/trace"
)

// Client invokes SOAP operations over HTTP.
type Client struct {
	// Endpoint is the service URL.
	Endpoint string
	// HTTPClient is the underlying transport; a default with a 30s
	// timeout is used when nil.
	HTTPClient *http.Client
}

// NewClient creates a SOAP client for the endpoint.
func NewClient(endpoint string) *Client {
	return &Client{
		Endpoint:   endpoint,
		HTTPClient: &http.Client{Timeout: 30 * time.Second},
	}
}

// Call sends the request payload as a SOAP envelope and decodes the
// response body into out (skipped when out is nil). SOAP faults are
// returned as *Fault errors. When ctx carries a trace span its context
// rides along in a TraceContext header, so the server's spans join the
// caller's trace.
func (c *Client) Call(ctx context.Context, soapAction string, request, out any) error {
	reqBody, err := EncodeWithHeaders(request, traceBlock(ctx), messageIDBlock(ctx))
	if err != nil {
		return err
	}
	env, err := c.roundTrip(ctx, soapAction, reqBody)
	if err != nil {
		return err
	}
	if env.Fault != nil {
		return env.Fault
	}
	if out == nil {
		return nil
	}
	return env.DecodeBody(out)
}

// CallRaw sends pre-encoded body XML and returns the raw response
// envelope. Trace context carried by ctx is injected like Call does.
func (c *Client) CallRaw(ctx context.Context, soapAction string, bodyXML []byte) (*Envelope, error) {
	return c.roundTrip(ctx, soapAction, EncodeRawWithHeaders(bodyXML, traceBlock(ctx), messageIDBlock(ctx)))
}

// traceBlock renders the TraceContext header for the span carried by
// ctx (nil when untraced).
func traceBlock(ctx context.Context) []byte {
	return TraceHeaderBlock(trace.FromContext(ctx).Context())
}

// messageIDBlock renders the MessageID header for the call: the
// idempotency key already carried by ctx (an application-level retry of
// the same logical operation), or a freshly minted process-unique ID.
// Every call therefore leaves the client stack keyed, which is what
// lets a journaling b-peer group dedupe the retries downstream.
func messageIDBlock(ctx context.Context) []byte {
	id := replog.KeyFromContext(ctx)
	if id == "" {
		id = NewMessageID()
	}
	return MessageIDHeaderBlock(id)
}

func (c *Client) roundTrip(ctx context.Context, soapAction string, envelope []byte) (*Envelope, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Endpoint, bytes.NewReader(envelope))
	if err != nil {
		return nil, fmt.Errorf("soap: build request: %w", err)
	}
	req.Header.Set("Content-Type", "text/xml; charset=utf-8")
	req.Header.Set("SOAPAction", `"`+soapAction+`"`)
	hc := c.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("soap: call %s: %w", c.Endpoint, err)
	}
	defer func() { _, _ = io.Copy(io.Discard, resp.Body); _ = resp.Body.Close() }()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return nil, fmt.Errorf("soap: read response: %w", err)
	}
	env, err := Decode(data)
	if err != nil {
		// Non-SOAP error page.
		return nil, fmt.Errorf("soap: http %d: %w", resp.StatusCode, err)
	}
	return env, nil
}
