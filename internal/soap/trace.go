package soap

import (
	"bytes"
	"encoding/xml"

	"whisper/internal/trace"
)

// TraceHeaderBlock builds the SOAP header block that carries a trace
// context across the HTTP hop:
//
//	<TraceContext>traceID/spanID</TraceContext>
//
// Invalid contexts produce nil (no header).
func TraceHeaderBlock(sc trace.SpanContext) []byte {
	wire := sc.String()
	if wire == "" {
		return nil
	}
	var b bytes.Buffer
	b.WriteString("<" + trace.SoapHeaderElement + ">")
	_ = xml.EscapeText(&b, []byte(wire))
	b.WriteString("</" + trace.SoapHeaderElement + ">")
	return b.Bytes()
}

// ExtractTrace returns the trace context carried in the envelope's
// TraceContext header block, if any.
func ExtractTrace(env *Envelope) (trace.SpanContext, bool) {
	for _, h := range env.Headers {
		if h.Name.Local != trace.SoapHeaderElement {
			continue
		}
		var doc struct {
			Value string `xml:",chardata"`
		}
		if err := xml.Unmarshal(h.XML, &doc); err != nil {
			return trace.SpanContext{}, false
		}
		return trace.Parse(doc.Value)
	}
	return trace.SpanContext{}, false
}
