package soap

import (
	"context"
	"math/rand"
	"net/http/httptest"
	"reflect"
	"testing"
	"testing/quick"

	"whisper/internal/trace"
)

type wireCtx trace.SpanContext

const idAlphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789.-"

func randomID(rng *rand.Rand) trace.ID {
	n := 1 + rng.Intn(24)
	b := make([]byte, n)
	for i := range b {
		b[i] = idAlphabet[rng.Intn(len(idAlphabet))]
	}
	return trace.ID(b)
}

// Generate implements quick.Generator.
func (wireCtx) Generate(rng *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(wireCtx{TraceID: randomID(rng), SpanID: randomID(rng)})
}

// TestTraceHeaderRoundTripProperty checks that any tracer-shaped span
// context injected as a SOAP header block survives a full envelope
// encode/decode — the SOAP half of the propagation contract (the p2p
// half lives in internal/p2p).
func TestTraceHeaderRoundTripProperty(t *testing.T) {
	prop := func(w wireCtx) bool {
		sc := trace.SpanContext(w)
		data := EncodeRawWithHeaders([]byte("<Ping/>"), TraceHeaderBlock(sc))
		env, err := Decode(data)
		if err != nil {
			return false
		}
		got, ok := ExtractTrace(env)
		return ok && got == sc
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTraceHeaderAbsent(t *testing.T) {
	env, err := Decode(EncodeRaw([]byte("<Ping/>")))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ExtractTrace(env); ok {
		t.Error("extracted a trace from an untraced envelope")
	}
	if TraceHeaderBlock(trace.SpanContext{}) != nil {
		t.Error("invalid context must produce no header")
	}
}

// TestClientServerTracePropagation drives a traced SOAP call over real
// HTTP and checks the server's span lands in the client's trace.
func TestClientServerTracePropagation(t *testing.T) {
	col := trace.NewCollector(16)
	srv := NewServer()
	srv.SetTracer(trace.NewSeeded(col, 1))
	srv.Register("Ping", func(ctx context.Context, bodyXML []byte) (any, error) {
		if trace.FromContext(ctx) == nil {
			t.Error("handler context carries no span")
		}
		return []byte("<Pong/>"), nil
	})
	hs := httptest.NewServer(srv)
	defer hs.Close()

	clientTr := trace.NewSeeded(trace.NewCollector(16), 2)
	ctx, span := clientTr.StartSpan(context.Background(), "client.request")
	cl := NewClient(hs.URL)
	env, err := cl.CallRaw(ctx, "Ping", []byte("<Ping/>"))
	if err != nil || env.Fault != nil {
		t.Fatalf("call: %v fault=%v", err, env.Fault)
	}
	span.End()

	recs := col.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("server recorded %d spans", len(recs))
	}
	rec := recs[0]
	if rec.Name != "soap.Ping" {
		t.Errorf("span name = %q", rec.Name)
	}
	if rec.TraceID != span.Context().TraceID || rec.ParentID != span.Context().SpanID {
		t.Errorf("server span not parented under client: %+v vs %+v", rec, span.Context())
	}
}

// TestServerRootSpanWithoutClientTrace: an untraced client still gets
// a (root) span at a traced server.
func TestServerRootSpanWithoutClientTrace(t *testing.T) {
	col := trace.NewCollector(16)
	srv := NewServer()
	srv.SetTracer(trace.NewSeeded(col, 3))
	srv.Register("Ping", func(context.Context, []byte) (any, error) { return []byte("<Pong/>"), nil })
	hs := httptest.NewServer(srv)
	defer hs.Close()

	if _, err := NewClient(hs.URL).CallRaw(context.Background(), "Ping", []byte("<Ping/>")); err != nil {
		t.Fatal(err)
	}
	recs := col.Snapshot()
	if len(recs) != 1 || recs[0].ParentID != "" {
		t.Errorf("want one root span, got %+v", recs)
	}
}
