package soap

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestEncodeWithHeadersRoundTrip(t *testing.T) {
	data, err := EncodeWithHeaders(studentRequest{StudentID: "S1"},
		[]byte(`<TransactionID>tx-42</TransactionID>`),
		MustUnderstandBlock("Security", "<Token>abc</Token>"),
	)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(env.Headers) != 2 {
		t.Fatalf("headers = %d, want 2", len(env.Headers))
	}
	if env.Headers[0].Name.Local != "TransactionID" || env.Headers[0].MustUnderstand {
		t.Errorf("header 0 = %+v", env.Headers[0])
	}
	if env.Headers[1].Name.Local != "Security" || !env.Headers[1].MustUnderstand {
		t.Errorf("header 1 = %+v", env.Headers[1])
	}
	if !bytes.Contains(env.Headers[1].XML, []byte("<Token>abc</Token>")) {
		t.Errorf("header content lost: %s", env.Headers[1].XML)
	}
	// The body still decodes.
	var req studentRequest
	if err := env.DecodeBody(&req); err != nil || req.StudentID != "S1" {
		t.Errorf("body = %+v, %v", req, err)
	}
}

func TestDecodeWithoutHeaders(t *testing.T) {
	data, err := Encode(studentRequest{StudentID: "S1"})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(env.Headers) != 0 {
		t.Errorf("headers = %v, want none", env.Headers)
	}
}

func TestServerMustUnderstandFault(t *testing.T) {
	srv := NewServer()
	srv.Register("StudentInformation", func(_ context.Context, _ []byte) (any, error) {
		return studentResponse{Name: "x"}, nil
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)

	// A mustUnderstand header the server has not declared → fault.
	body, err := EncodeWithHeaders(studentRequest{StudentID: "S1"},
		MustUnderstandBlock("Security", "<Token>x</Token>"))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := postEnvelope(t, client, body)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if env.Fault == nil || env.Fault.Code != FaultCodeMustUnderstand {
		t.Fatalf("expected MustUnderstand fault, got %+v (%q)", env.Fault, env.BodyXML)
	}

	// After declaring it, the same request succeeds.
	srv.Understand("Security")
	env, err = postEnvelope(t, client, body)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if env.Fault != nil {
		t.Fatalf("unexpected fault: %v", env.Fault)
	}
	if !strings.Contains(string(env.BodyXML), "<Name>x</Name>") {
		t.Errorf("body = %q", env.BodyXML)
	}
}

func TestServerIgnoresOptionalHeaders(t *testing.T) {
	srv := NewServer()
	srv.Register("StudentInformation", func(_ context.Context, _ []byte) (any, error) {
		return studentResponse{Name: "y"}, nil
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := NewClient(ts.URL)
	body, err := EncodeWithHeaders(studentRequest{StudentID: "S1"},
		[]byte(`<Tracing level="debug"/>`))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := postEnvelope(t, client, body)
	if err != nil {
		t.Fatalf("post: %v", err)
	}
	if env.Fault != nil {
		t.Fatalf("optional header caused fault: %v", env.Fault)
	}
}

// postEnvelope posts a fully encoded envelope through the client's
// transport (CallRaw re-wraps, so go through roundTrip directly).
func postEnvelope(t *testing.T, c *Client, envelope []byte) (*Envelope, error) {
	t.Helper()
	return c.roundTrip(context.Background(), "StudentInformation", envelope)
}

func TestParseHeaderBlocksEmpty(t *testing.T) {
	blocks, err := parseHeaderBlocks([]byte("   "))
	if err != nil || blocks != nil {
		t.Errorf("blocks = %v, %v", blocks, err)
	}
}

func TestMustUnderstandBlockShape(t *testing.T) {
	b := MustUnderstandBlock("Auth", "<K>v</K>")
	if !strings.Contains(string(b), `soap:mustUnderstand="1"`) {
		t.Errorf("block = %s", b)
	}
}
