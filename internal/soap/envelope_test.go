package soap

import (
	"encoding/xml"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

type studentRequest struct {
	XMLName   xml.Name `xml:"StudentInformation"`
	StudentID string   `xml:"StudentID"`
}

type studentResponse struct {
	XMLName xml.Name `xml:"StudentInformationResponse"`
	Name    string   `xml:"Name"`
	Program string   `xml:"Program"`
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	data, err := Encode(studentRequest{StudentID: "S42"})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if env.Fault != nil {
		t.Fatalf("unexpected fault: %v", env.Fault)
	}
	if env.BodyRoot.Local != "StudentInformation" {
		t.Errorf("body root = %v", env.BodyRoot)
	}
	var req studentRequest
	if err := env.DecodeBody(&req); err != nil {
		t.Fatalf("decode body: %v", err)
	}
	if req.StudentID != "S42" {
		t.Errorf("StudentID = %q", req.StudentID)
	}
}

func TestFaultRoundTrip(t *testing.T) {
	f := &Fault{Code: FaultCodeServer, Reason: "database down", Actor: "urn:peer-1", Detail: "conn refused"}
	data, err := EncodeFault(f)
	if err != nil {
		t.Fatalf("encode fault: %v", err)
	}
	env, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if env.Fault == nil {
		t.Fatalf("fault not detected in %s", data)
	}
	if env.Fault.Code != f.Code || env.Fault.Reason != f.Reason ||
		env.Fault.Actor != f.Actor || env.Fault.Detail != f.Detail {
		t.Errorf("fault = %+v, want %+v", env.Fault, f)
	}
}

func TestFaultIsError(t *testing.T) {
	f := ServerFault(errors.New("boom"))
	if !strings.Contains(f.Error(), "boom") || !strings.Contains(f.Error(), FaultCodeServer) {
		t.Errorf("Error() = %q", f.Error())
	}
	var err error = f
	var target *Fault
	if !errors.As(err, &target) {
		t.Error("Fault should be matchable with errors.As")
	}
}

func TestDecodeBodyOnFaultReturnsFault(t *testing.T) {
	data, _ := EncodeFault(ClientFault("bad input"))
	env, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var out studentResponse
	err = env.DecodeBody(&out)
	var f *Fault
	if !errors.As(err, &f) {
		t.Fatalf("DecodeBody on fault = %v, want *Fault", err)
	}
}

func TestDecodeEmptyBody(t *testing.T) {
	env, err := Decode(EncodeRaw(nil))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if env.Fault != nil || len(env.BodyXML) != 0 {
		t.Errorf("env = %+v, want empty", env)
	}
	if err := env.DecodeBody(&studentRequest{}); err == nil {
		t.Error("DecodeBody on empty body should error")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("this is not xml")); err == nil {
		t.Error("expected decode error")
	}
}

func TestDecodeRejectsNonEnvelope(t *testing.T) {
	if _, err := Decode([]byte("<Other/>")); err == nil {
		t.Error("expected error for non-envelope root")
	}
}

func TestEncodeFaultEscapes(t *testing.T) {
	f := ClientFault(`<script>alert("x")</script>`)
	data, err := EncodeFault(f)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if strings.Contains(string(data), "<script>") {
		t.Error("fault reason not escaped")
	}
	env, err := Decode(data)
	if err != nil || env.Fault == nil {
		t.Fatalf("decode: %v", err)
	}
	if env.Fault.Reason != f.Reason {
		t.Errorf("reason = %q, want %q", env.Fault.Reason, f.Reason)
	}
}

func TestEnvelopeRoundTripProperty(t *testing.T) {
	prop := func(id string) bool {
		// Strip characters invalid in XML 1.0 text.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 || r == 0xFFFE || r == 0xFFFF {
				return -1
			}
			return r
		}, id)
		data, err := Encode(studentRequest{StudentID: clean})
		if err != nil {
			return false
		}
		env, err := Decode(data)
		if err != nil || env.Fault != nil {
			return false
		}
		var out studentRequest
		if err := env.DecodeBody(&out); err != nil {
			return false
		}
		return out.StudentID == clean
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
