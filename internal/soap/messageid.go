package soap

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"encoding/xml"
	"strconv"
	"sync/atomic"
)

// MessageIDHeaderElement is the local name of the SOAP header block
// carrying the client-minted message ID. Whisper uses it as the
// idempotency key for exactly-once execution (internal/replog): the
// client stack mints one per logical call, and every retry of that call
// — at the SOAP layer or inside the proxy's re-bind loop — carries the
// same ID, so a journaling b-peer group never executes the operation
// twice (WS-Addressing's wsa:MessageID, minus the namespace machinery).
const MessageIDHeaderElement = "MessageID"

// MessageIDHeaderBlock builds the MessageID SOAP header block. An empty
// id produces nil (no header).
func MessageIDHeaderBlock(id string) []byte {
	if id == "" {
		return nil
	}
	var b bytes.Buffer
	b.WriteString("<" + MessageIDHeaderElement + ">")
	_ = xml.EscapeText(&b, []byte(id))
	b.WriteString("</" + MessageIDHeaderElement + ">")
	return b.Bytes()
}

// ExtractMessageID returns the message ID carried in the envelope's
// MessageID header block, if any.
func ExtractMessageID(env *Envelope) (string, bool) {
	for _, h := range env.Headers {
		if h.Name.Local != MessageIDHeaderElement {
			continue
		}
		var doc struct {
			Value string `xml:",chardata"`
		}
		if err := xml.Unmarshal(h.XML, &doc); err != nil {
			return "", false
		}
		return doc.Value, doc.Value != ""
	}
	return "", false
}

// msgIDPrefix is a per-process random prefix so message IDs from
// different client processes never collide; msgIDSeq makes them unique
// within the process.
var (
	msgIDPrefix = newMsgIDPrefix()
	msgIDSeq    atomic.Uint64
)

func newMsgIDPrefix() string {
	var buf [6]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// crypto/rand failing is effectively fatal elsewhere; fall back
		// to a fixed prefix rather than crash a client over an ID.
		return "msg-0"
	}
	return "msg-" + hex.EncodeToString(buf[:])
}

// NewMessageID mints a process-unique message ID.
func NewMessageID() string {
	return msgIDPrefix + "-" + strconv.FormatUint(msgIDSeq.Add(1), 10)
}
