// Package soap implements the SOAP 1.1 messaging layer Whisper fronts
// its Web services with: envelope encoding/decoding, <soap:Fault>
// generation and detection (the only failure-handling mechanism plain
// Web services have, per the paper's introduction), and an HTTP
// binding with client and server sides.
package soap

import (
	"bytes"
	"encoding/xml"
	"fmt"
)

// NS is the SOAP 1.1 envelope namespace.
const NS = "http://schemas.xmlsoap.org/soap/envelope/"

// Standard SOAP 1.1 fault codes.
const (
	FaultCodeServer          = "soap:Server"
	FaultCodeClient          = "soap:Client"
	FaultCodeVersionMismatch = "soap:VersionMismatch"
	FaultCodeMustUnderstand  = "soap:MustUnderstand"
)

// Fault is a SOAP 1.1 fault. It implements error so transport layers
// can return it directly.
type Fault struct {
	XMLName xml.Name `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
	// Code is the faultcode (e.g. soap:Server for server-side errors).
	Code string `xml:"faultcode"`
	// Reason is the human-readable faultstring.
	Reason string `xml:"faultstring"`
	// Actor optionally names the failing node.
	Actor string `xml:"faultactor,omitempty"`
	// Detail carries application-specific error XML or text.
	Detail string `xml:"detail,omitempty"`
}

var _ error = (*Fault)(nil)

// Error implements error.
func (f *Fault) Error() string {
	return fmt.Sprintf("soap fault %s: %s", f.Code, f.Reason)
}

// ServerFault builds a soap:Server fault from an error.
func ServerFault(err error) *Fault {
	return &Fault{Code: FaultCodeServer, Reason: err.Error()}
}

// ClientFault builds a soap:Client fault with the given reason.
func ClientFault(reason string) *Fault {
	return &Fault{Code: FaultCodeClient, Reason: reason}
}

// Envelope is the parsed form of a SOAP message: either a payload
// (raw body XML) or a fault, plus any header blocks.
type Envelope struct {
	// BodyXML is the raw inner XML of the soap:Body (nil for faults).
	BodyXML []byte
	// BodyRoot is the qualified root element of the body payload, used
	// to dispatch operations ("" for faults or empty bodies).
	BodyRoot xml.Name
	// Fault is non-nil if the body carries a soap:Fault.
	Fault *Fault
	// Headers are the soap:Header blocks, in document order.
	Headers []HeaderBlock
}

// Encode wraps the XML-marshalable payload in a SOAP envelope.
func Encode(payload any) ([]byte, error) {
	body, err := xml.Marshal(payload)
	if err != nil {
		return nil, fmt.Errorf("soap: marshal payload: %w", err)
	}
	return wrap(body), nil
}

// EncodeRaw wraps pre-marshaled body XML in a SOAP envelope.
func EncodeRaw(bodyXML []byte) []byte { return wrap(bodyXML) }

// EncodeFault wraps a fault in a SOAP envelope.
func EncodeFault(f *Fault) ([]byte, error) {
	b := getBuf()
	b.WriteString(xml.Header)
	b.WriteString(`<soap:Envelope xmlns:soap="` + NS + `"><soap:Body>`)
	b.WriteString(`<soap:Fault><faultcode>`)
	_ = xml.EscapeText(b, []byte(f.Code))
	b.WriteString(`</faultcode><faultstring>`)
	_ = xml.EscapeText(b, []byte(f.Reason))
	b.WriteString(`</faultstring>`)
	if f.Actor != "" {
		b.WriteString(`<faultactor>`)
		_ = xml.EscapeText(b, []byte(f.Actor))
		b.WriteString(`</faultactor>`)
	}
	if f.Detail != "" {
		b.WriteString(`<detail>`)
		_ = xml.EscapeText(b, []byte(f.Detail))
		b.WriteString(`</detail>`)
	}
	b.WriteString(`</soap:Fault>`)
	b.WriteString(`</soap:Body></soap:Envelope>`)
	return putBuf(b), nil
}

func wrap(body []byte) []byte {
	b := getBuf()
	b.WriteString(xml.Header)
	b.WriteString(`<soap:Envelope xmlns:soap="` + NS + `"><soap:Body>`)
	b.Write(body)
	b.WriteString(`</soap:Body></soap:Envelope>`)
	return putBuf(b)
}

// rawEnvelope mirrors the wire format for decoding.
type rawEnvelope struct {
	XMLName xml.Name   `xml:"http://schemas.xmlsoap.org/soap/envelope/ Envelope"`
	Header  *rawHeader `xml:"http://schemas.xmlsoap.org/soap/envelope/ Header"`
	Body    rawBody    `xml:"http://schemas.xmlsoap.org/soap/envelope/ Body"`
}

type rawHeader struct {
	Content []byte `xml:",innerxml"`
}

type rawBody struct {
	Content []byte `xml:",innerxml"`
}

// Decode parses a SOAP envelope. Faults are detected and returned in
// Envelope.Fault; other payloads are available raw in BodyXML for a
// second-stage DecodeBody.
func Decode(data []byte) (*Envelope, error) {
	var raw rawEnvelope
	if err := xml.Unmarshal(data, &raw); err != nil {
		return nil, fmt.Errorf("soap: decode envelope: %w", err)
	}
	env := &Envelope{BodyXML: bytes.TrimSpace(raw.Body.Content)}
	if raw.Header != nil {
		blocks, err := parseHeaderBlocks(raw.Header.Content)
		if err != nil {
			return nil, fmt.Errorf("soap: decode header: %w", err)
		}
		env.Headers = blocks
	}
	if len(env.BodyXML) == 0 {
		return env, nil
	}
	root, err := bodyRoot(env.BodyXML)
	if err != nil {
		return nil, fmt.Errorf("soap: inspect body: %w", err)
	}
	env.BodyRoot = root
	if root.Local == "Fault" && (root.Space == NS || root.Space == "soap" || root.Space == "") {
		var f Fault
		// The serialized fault may use the soap prefix without a
		// namespace declaration inside the fragment; re-wrap it with
		// the declaration so the decoder resolves it.
		frag := append([]byte(`<wrapper xmlns:soap="`+NS+`">`), env.BodyXML...)
		frag = append(frag, []byte(`</wrapper>`)...)
		var wrapper struct {
			Fault Fault `xml:"http://schemas.xmlsoap.org/soap/envelope/ Fault"`
		}
		if err := xml.Unmarshal(frag, &wrapper); err != nil {
			return nil, fmt.Errorf("soap: decode fault: %w", err)
		}
		f = wrapper.Fault
		env.Fault = &f
		env.BodyXML = nil
	}
	return env, nil
}

// DecodeBody unmarshals the envelope's body payload into v.
func (e *Envelope) DecodeBody(v any) error {
	if e.Fault != nil {
		return e.Fault
	}
	if len(e.BodyXML) == 0 {
		return fmt.Errorf("soap: empty body")
	}
	if err := xml.Unmarshal(e.BodyXML, v); err != nil {
		return fmt.Errorf("soap: decode body: %w", err)
	}
	return nil
}

// bodyRoot returns the name of the first element in the body fragment.
func bodyRoot(frag []byte) (xml.Name, error) {
	dec := xml.NewDecoder(bytes.NewReader(frag))
	for {
		tok, err := dec.Token()
		if err != nil {
			return xml.Name{}, err
		}
		if se, ok := tok.(xml.StartElement); ok {
			return se.Name, nil
		}
	}
}
