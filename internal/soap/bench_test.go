package soap

import "testing"

func BenchmarkEncodeDecode(b *testing.B) {
	req := studentRequest{StudentID: "S0042"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data, err := Encode(req)
		if err != nil {
			b.Fatal(err)
		}
		env, err := Decode(data)
		if err != nil {
			b.Fatal(err)
		}
		var out studentRequest
		if err := env.DecodeBody(&out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeFault(b *testing.B) {
	f := &Fault{Code: FaultCodeServer, Reason: "backend unavailable", Detail: "conn refused"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeFault(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeFault(b *testing.B) {
	data, err := EncodeFault(ServerFault(errClosedForBench))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := Decode(data)
		if err != nil || env.Fault == nil {
			b.Fatal("decode fault failed")
		}
	}
}

var errClosedForBench = ClientFault("bench")
