package baseline

import (
	"context"
	"errors"
	"testing"
)

func okEndpoint(tag string) *FuncEndpoint {
	return NewFuncEndpoint(func(_ context.Context, op string, payload []byte) ([]byte, error) {
		return []byte(tag + ":" + op + ":" + string(payload)), nil
	})
}

func TestFuncEndpointAvailability(t *testing.T) {
	e := okEndpoint("a")
	if !e.Available() {
		t.Fatal("fresh endpoint should be available")
	}
	out, err := e.Invoke(context.Background(), "Op", []byte("x"))
	if err != nil || string(out) != "a:Op:x" {
		t.Fatalf("invoke = %q, %v", out, err)
	}
	e.SetAvailable(false)
	if e.Available() {
		t.Error("endpoint still available after SetAvailable(false)")
	}
	if _, err := e.Invoke(context.Background(), "Op", nil); !errors.Is(err, ErrEndpointDown) {
		t.Errorf("err = %v, want ErrEndpointDown", err)
	}
}

func TestSingleServerFailsWhenDown(t *testing.T) {
	e := okEndpoint("solo")
	s := NewSingleServer(e)
	if _, err := s.Invoke(context.Background(), "Op", nil); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	e.SetAvailable(false)
	if _, err := s.Invoke(context.Background(), "Op", nil); err == nil {
		t.Error("single server must surface the failure")
	}
}

func TestClientRetryFailsOver(t *testing.T) {
	a, b, c := okEndpoint("a"), okEndpoint("b"), okEndpoint("c")
	cr := NewClientRetry(a, b, c)
	out, err := cr.Invoke(context.Background(), "Op", nil)
	if err != nil || string(out) != "a:Op:" {
		t.Fatalf("first invoke = %q, %v", out, err)
	}
	// Kill the preferred replica: next call pays a failed attempt,
	// then lands on b and sticks there.
	a.SetAvailable(false)
	out, err = cr.Invoke(context.Background(), "Op", nil)
	if err != nil || string(out) != "b:Op:" {
		t.Fatalf("failover invoke = %q, %v", out, err)
	}
	before := cr.Attempts()
	if _, err := cr.Invoke(context.Background(), "Op", nil); err != nil {
		t.Fatalf("sticky invoke: %v", err)
	}
	if cr.Attempts()-before != 1 {
		t.Errorf("sticky failover should cost one attempt, cost %d", cr.Attempts()-before)
	}
}

func TestClientRetryAllDown(t *testing.T) {
	a, b := okEndpoint("a"), okEndpoint("b")
	a.SetAvailable(false)
	b.SetAvailable(false)
	cr := NewClientRetry(a, b)
	if _, err := cr.Invoke(context.Background(), "Op", nil); err == nil {
		t.Error("expected error with every replica down")
	}
}

func TestClientRetryNoEndpoints(t *testing.T) {
	cr := NewClientRetry()
	if _, err := cr.Invoke(context.Background(), "Op", nil); err == nil {
		t.Error("expected error with no endpoints")
	}
}

func TestClientRetryAttemptAccounting(t *testing.T) {
	a, b, c := okEndpoint("a"), okEndpoint("b"), okEndpoint("c")
	a.SetAvailable(false)
	b.SetAvailable(false)
	cr := NewClientRetry(a, b, c)
	if _, err := cr.Invoke(context.Background(), "Op", nil); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if got := cr.Attempts(); got != 3 {
		t.Errorf("attempts = %d, want 3 (two dead + one live)", got)
	}
}
