// Package baseline implements the fault-tolerance strategies the
// paper positions Whisper against, so the availability comparison can
// be measured rather than argued:
//
//   - SingleServer: a plain Web service with no replication — the
//     status quo the paper's introduction criticizes ("Current Web
//     service specifications do not provide support to handle service
//     failures").
//   - ClientRetry: WS-FTM-style N-version invocation (Looker & Munro,
//     reference [3] in the paper): the *client* knows every replica
//     endpoint and fails over itself when an invocation errors. The
//     failure is masked only after the client observes it, and every
//     client must carry the replica list and retry logic.
//
// Whisper's contribution is making the same redundancy transparent:
// the client talks to one endpoint and the P2P back end masks
// failures. Experiment E9 (internal/bench) compares all three.
package baseline

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// Endpoint is one invokable service replica.
type Endpoint interface {
	// Invoke executes the operation; infrastructure failures return
	// an error.
	Invoke(ctx context.Context, op string, payload []byte) ([]byte, error)
	// Available reports whether the replica is up (used by fault
	// injection, not by clients).
	Available() bool
}

// FuncEndpoint adapts a function plus an availability flag.
type FuncEndpoint struct {
	mu sync.Mutex
	up bool
	fn func(ctx context.Context, op string, payload []byte) ([]byte, error)
}

var _ Endpoint = (*FuncEndpoint)(nil)

// ErrEndpointDown is returned by a crashed endpoint.
var ErrEndpointDown = errors.New("baseline: endpoint down")

// NewFuncEndpoint wraps fn as an available endpoint.
func NewFuncEndpoint(fn func(ctx context.Context, op string, payload []byte) ([]byte, error)) *FuncEndpoint {
	return &FuncEndpoint{up: true, fn: fn}
}

// Invoke implements Endpoint.
func (e *FuncEndpoint) Invoke(ctx context.Context, op string, payload []byte) ([]byte, error) {
	e.mu.Lock()
	up := e.up
	e.mu.Unlock()
	if !up {
		return nil, ErrEndpointDown
	}
	return e.fn(ctx, op, payload)
}

// Available implements Endpoint.
func (e *FuncEndpoint) Available() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.up
}

// SetAvailable flips the endpoint (fault injection).
func (e *FuncEndpoint) SetAvailable(up bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.up = up
}

// SingleServer is the no-replication strategy: one endpoint, failures
// surface directly to the client.
type SingleServer struct {
	endpoint Endpoint
}

// NewSingleServer wraps the lone endpoint.
func NewSingleServer(endpoint Endpoint) *SingleServer {
	return &SingleServer{endpoint: endpoint}
}

// Invoke forwards to the single endpoint.
func (s *SingleServer) Invoke(ctx context.Context, op string, payload []byte) ([]byte, error) {
	out, err := s.endpoint.Invoke(ctx, op, payload)
	if err != nil {
		return nil, fmt.Errorf("baseline single-server: %w", err)
	}
	return out, nil
}

// ClientRetry is the WS-FTM-style strategy: the client holds the full
// replica list and retries the next replica on failure. The first
// request after a crash pays one failed attempt per dead replica, and
// the replica list must be maintained at every client.
type ClientRetry struct {
	mu        sync.Mutex
	endpoints []Endpoint
	// preferred is the index of the last working replica (sticky
	// failover, as WS-FTM's sequential strategy).
	preferred int
	// attempts counts total invocation attempts (observability).
	attempts int64
}

// NewClientRetry wraps the replica list.
func NewClientRetry(endpoints ...Endpoint) *ClientRetry {
	return &ClientRetry{endpoints: append([]Endpoint(nil), endpoints...)}
}

// Attempts returns the total attempts made across invocations.
func (c *ClientRetry) Attempts() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.attempts
}

// Invoke tries the preferred replica first, then the rest in order.
func (c *ClientRetry) Invoke(ctx context.Context, op string, payload []byte) ([]byte, error) {
	c.mu.Lock()
	start := c.preferred
	n := len(c.endpoints)
	c.mu.Unlock()
	if n == 0 {
		return nil, errors.New("baseline client-retry: no endpoints")
	}
	var lastErr error
	for i := 0; i < n; i++ {
		idx := (start + i) % n
		c.mu.Lock()
		ep := c.endpoints[idx]
		c.attempts++
		c.mu.Unlock()
		out, err := ep.Invoke(ctx, op, payload)
		if err == nil {
			c.mu.Lock()
			c.preferred = idx
			c.mu.Unlock()
			return out, nil
		}
		lastErr = err
		if ctx.Err() != nil {
			break
		}
	}
	return nil, fmt.Errorf("baseline client-retry: all %d replicas failed: %w", n, lastErr)
}
