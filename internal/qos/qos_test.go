package qos

import (
	"testing"
	"testing/quick"
	"time"
)

func TestProfileValid(t *testing.T) {
	tests := []struct {
		p    Profile
		want bool
	}{
		{Profile{LatencyMillis: 5, CostPerCall: 1, Reliability: 0.99, Availability: 0.999}, true},
		{Profile{}, true},
		{Profile{Reliability: 1.5}, false},
		{Profile{Availability: -0.1}, false},
		{Profile{LatencyMillis: -1}, false},
		{Profile{CostPerCall: -2}, false},
	}
	for _, tt := range tests {
		if got := tt.p.Valid(); got != tt.want {
			t.Errorf("Valid(%+v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestTrackerEWMAAndRatio(t *testing.T) {
	tr := NewTracker()
	if _, _, _, ok := tr.Observed("x"); ok {
		t.Error("unobserved peer should not report")
	}
	tr.Observe("x", 10*time.Millisecond, true)
	lat, ratio, calls, ok := tr.Observed("x")
	if !ok || lat != 10 || ratio != 1 || calls != 1 {
		t.Errorf("observed = %v %v %v %v", lat, ratio, calls, ok)
	}
	tr.Observe("x", 20*time.Millisecond, false)
	lat, ratio, calls, _ = tr.Observed("x")
	if lat <= 10 || lat >= 20 {
		t.Errorf("EWMA latency = %v, want between 10 and 20", lat)
	}
	if ratio != 0.5 || calls != 2 {
		t.Errorf("ratio = %v calls = %v", ratio, calls)
	}
	tr.Forget("x")
	if _, _, _, ok := tr.Observed("x"); ok {
		t.Error("forgotten peer still reports")
	}
}

func TestSelectorPrefersBetterProfile(t *testing.T) {
	s := NewSelector(nil, Weights{})
	good := Candidate{Peer: "good", SemanticScore: 1,
		Profile: Profile{LatencyMillis: 5, CostPerCall: 0.1, Reliability: 0.999, Availability: 0.999}}
	bad := Candidate{Peer: "bad", SemanticScore: 1,
		Profile: Profile{LatencyMillis: 500, CostPerCall: 5, Reliability: 0.5, Availability: 0.8}}
	if s.Score(good) <= s.Score(bad) {
		t.Errorf("good score %v should exceed bad score %v", s.Score(good), s.Score(bad))
	}
	best, err := s.Best([]Candidate{bad, good})
	if err != nil || best.Peer != "good" {
		t.Errorf("Best = %v, %v", best.Peer, err)
	}
}

func TestSelectorPrefersBetterSemantics(t *testing.T) {
	s := NewSelector(nil, Weights{})
	p := Profile{LatencyMillis: 10, Reliability: 0.99, Availability: 0.99}
	exact := Candidate{Peer: "exact", Profile: p, SemanticScore: 1.0}
	subsume := Candidate{Peer: "subsume", Profile: p, SemanticScore: 0.6}
	if s.Score(exact) <= s.Score(subsume) {
		t.Error("exact semantic match should outrank subsume")
	}
}

func TestSelectorUsesObservations(t *testing.T) {
	tr := NewTracker()
	// "liar" advertises perfect quality but fails everything.
	for i := 0; i < 50; i++ {
		tr.Observe("liar", 400*time.Millisecond, false)
		tr.Observe("honest", 10*time.Millisecond, true)
	}
	s := NewSelector(tr, Weights{})
	liar := Candidate{Peer: "liar", SemanticScore: 1,
		Profile: Profile{LatencyMillis: 1, Reliability: 1, Availability: 1}}
	honest := Candidate{Peer: "honest", SemanticScore: 1,
		Profile: Profile{LatencyMillis: 50, Reliability: 0.9, Availability: 0.9}}
	if s.Score(honest) <= s.Score(liar) {
		t.Errorf("observed behaviour should dominate advertisement: honest=%v liar=%v",
			s.Score(honest), s.Score(liar))
	}
}

func TestRankStableAndSorted(t *testing.T) {
	s := NewSelector(nil, Weights{})
	cands := []Candidate{
		{Peer: "c", SemanticScore: 0.3},
		{Peer: "a", SemanticScore: 1.0},
		{Peer: "b", SemanticScore: 0.6},
	}
	ranked := s.Rank(cands)
	if ranked[0].Peer != "a" || ranked[1].Peer != "b" || ranked[2].Peer != "c" {
		t.Errorf("rank order = %v %v %v", ranked[0].Peer, ranked[1].Peer, ranked[2].Peer)
	}
	// Original slice untouched.
	if cands[0].Peer != "c" {
		t.Error("Rank mutated input")
	}
}

func TestBestEmpty(t *testing.T) {
	s := NewSelector(nil, Weights{})
	if _, err := s.Best(nil); err == nil {
		t.Error("expected error for empty candidates")
	}
}

func TestScoreBoundedProperty(t *testing.T) {
	s := NewSelector(nil, Weights{})
	prop := func(lat, cost, rel, avail, sem float64) bool {
		abs := func(f float64) float64 {
			if f < 0 {
				return -f
			}
			return f
		}
		clamp01 := func(f float64) float64 {
			f = abs(f)
			for f > 1 {
				f /= 10
			}
			return f
		}
		c := Candidate{
			Peer:          "x",
			SemanticScore: clamp01(sem),
			Profile: Profile{
				LatencyMillis: abs(lat),
				CostPerCall:   abs(cost),
				Reliability:   clamp01(rel),
				Availability:  clamp01(avail),
			},
		}
		score := s.Score(c)
		return score >= 0 && score <= 1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
