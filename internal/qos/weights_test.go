package qos

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestSetWeightsChangesRanking confirms weight updates take effect on
// subsequent scoring.
func TestSetWeightsChangesRanking(t *testing.T) {
	s := NewSelector(nil, Weights{})
	cheapSlow := Candidate{Peer: "cheap", Profile: Profile{LatencyMillis: 500, CostPerCall: 0, Reliability: 0.9, Availability: 0.9}, SemanticScore: 1}
	fastPricey := Candidate{Peer: "fast", Profile: Profile{LatencyMillis: 1, CostPerCall: 50, Reliability: 0.9, Availability: 0.9}, SemanticScore: 1}

	s.SetWeights(Weights{Latency: 1})
	if s.Score(fastPricey) <= s.Score(cheapSlow) {
		t.Fatalf("latency-only weights: fast peer should win (%f vs %f)",
			s.Score(fastPricey), s.Score(cheapSlow))
	}
	s.SetWeights(Weights{Cost: 1})
	if s.Score(cheapSlow) <= s.Score(fastPricey) {
		t.Fatalf("cost-only weights: cheap peer should win (%f vs %f)",
			s.Score(cheapSlow), s.Score(fastPricey))
	}
	// Zero-value weights reset to the default balance.
	s.SetWeights(Weights{})
	if got := s.CurrentWeights(); got != DefaultWeights {
		t.Fatalf("SetWeights(zero) = %+v, want DefaultWeights", got)
	}
}

// TestConcurrentWeightUpdates exercises SetWeights racing against
// Score/Rank/Best and tracker observations — run under -race this is
// the selector's thread-safety regression for the read balancer, which
// scores replicas on every read while operators retune weights.
func TestConcurrentWeightUpdates(t *testing.T) {
	tr := NewTracker()
	s := NewSelector(tr, Weights{})
	cands := make([]Candidate, 8)
	for i := range cands {
		cands[i] = Candidate{
			Peer:          fmt.Sprintf("peer-%d", i),
			Profile:       Profile{LatencyMillis: float64(i + 1), Reliability: 0.99, Availability: 0.99},
			SemanticScore: 1,
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: retune weights continuously.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				s.SetWeights(Weights{
					Latency:      float64(i%5) + 0.1,
					Reliability:  float64((i+1)%3) + 0.1,
					Availability: 0.5,
				})
				i++
			}
		}(w)
	}
	// Readers: score, rank and pick while weights churn.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, c := range cands {
					if sc := s.Score(c); sc < 0 || sc > 1 {
						t.Errorf("score %f out of [0,1]", sc)
						return
					}
				}
				_ = s.Rank(cands)
				if _, err := s.Best(cands); err != nil {
					t.Errorf("Best: %v", err)
					return
				}
				tr.Observe(cands[id%len(cands)].Peer, time.Duration(id+1)*time.Millisecond, id%7 != 0)
			}
		}(r)
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
