// Package qos implements the semantic QoS integration sketched in the
// paper's §2.4: every b-peer carries a quality profile (latency, cost,
// reliability, availability); the proxy tracks observed quality and a
// Selector picks the best peer among semantically equivalent
// candidates. The QoS dimensions follow Cardoso's workflow QoS model
// (time, cost, reliability) the paper references.
package qos

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// Profile is the advertised (static) quality of a peer service.
type Profile struct {
	// LatencyMillis is the advertised mean processing latency.
	LatencyMillis float64 `xml:"LatencyMillis"`
	// CostPerCall is the monetary cost per invocation, in arbitrary
	// currency units.
	CostPerCall float64 `xml:"CostPerCall"`
	// Reliability is the advertised success probability in [0,1].
	Reliability float64 `xml:"Reliability"`
	// Availability is the advertised uptime fraction in [0,1].
	Availability float64 `xml:"Availability"`
}

// Valid reports whether the profile's probabilities are in range and
// its magnitudes non-negative.
func (p Profile) Valid() bool {
	return p.LatencyMillis >= 0 && p.CostPerCall >= 0 &&
		p.Reliability >= 0 && p.Reliability <= 1 &&
		p.Availability >= 0 && p.Availability <= 1
}

// Tracker accumulates observed quality per peer: an EWMA of latency
// and a success ratio. Observed values dominate advertised ones once
// enough calls have been seen.
type Tracker struct {
	mu    sync.Mutex
	peers map[string]*peerStats
	// alpha is the EWMA smoothing factor for latency.
	alpha float64
}

type peerStats struct {
	ewmaLatency float64 // milliseconds
	calls       int64
	failures    int64
}

// NewTracker creates an empty tracker with EWMA alpha 0.2.
func NewTracker() *Tracker {
	return &Tracker{peers: make(map[string]*peerStats), alpha: 0.2}
}

// Observe records the outcome of one call to the peer.
func (t *Tracker) Observe(peer string, latency time.Duration, success bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, ok := t.peers[peer]
	if !ok {
		st = &peerStats{}
		t.peers[peer] = st
	}
	ms := float64(latency) / float64(time.Millisecond)
	if st.calls == 0 {
		st.ewmaLatency = ms
	} else {
		st.ewmaLatency = t.alpha*ms + (1-t.alpha)*st.ewmaLatency
	}
	st.calls++
	if !success {
		st.failures++
	}
}

// Observed returns the tracked view of the peer: EWMA latency,
// success ratio and call count. ok is false when the peer has never
// been observed.
func (t *Tracker) Observed(peer string) (latencyMillis, successRatio float64, calls int64, ok bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	st, found := t.peers[peer]
	if !found || st.calls == 0 {
		return 0, 0, 0, false
	}
	return st.ewmaLatency, 1 - float64(st.failures)/float64(st.calls), st.calls, true
}

// Forget drops all state for the peer (it left the group).
func (t *Tracker) Forget(peer string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.peers, peer)
}

// Candidate is one semantically acceptable peer with its advertised
// profile and semantic match score.
type Candidate struct {
	// Peer is the peer's identity (transport address in Whisper).
	Peer string
	// Profile is the advertised QoS.
	Profile Profile
	// SemanticScore is the signature match score in [0,1]; candidates
	// are assumed pre-filtered to acceptable match degrees.
	SemanticScore float64
}

// Weights balances the scoring dimensions. Zero-value weights are
// replaced by DefaultWeights.
type Weights struct {
	Latency      float64
	Cost         float64
	Reliability  float64
	Availability float64
	Semantic     float64
}

// DefaultWeights is a balanced weighting.
var DefaultWeights = Weights{Latency: 0.3, Cost: 0.1, Reliability: 0.3, Availability: 0.1, Semantic: 0.2}

// Selector ranks candidates by combining advertised profiles, observed
// behaviour and semantic match quality. Weight updates (SetWeights)
// are safe under concurrent Score/Rank/Best calls: operators retune
// the balance while the replica selector keeps routing reads.
type Selector struct {
	tracker *Tracker
	mu      sync.RWMutex
	weights Weights
}

// NewSelector builds a selector over the tracker (nil means advertised
// profiles only).
func NewSelector(tracker *Tracker, w Weights) *Selector {
	if w == (Weights{}) {
		w = DefaultWeights
	}
	return &Selector{tracker: tracker, weights: w}
}

// SetWeights replaces the scoring weights. Zero-value weights select
// DefaultWeights. Safe for concurrent use with Score/Rank/Best.
func (s *Selector) SetWeights(w Weights) {
	if w == (Weights{}) {
		w = DefaultWeights
	}
	s.mu.Lock()
	s.weights = w
	s.mu.Unlock()
}

// CurrentWeights returns the weights in effect.
func (s *Selector) CurrentWeights() Weights {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.weights
}

// Score computes the candidate's utility in [0,1]; higher is better.
func (s *Selector) Score(c Candidate) float64 {
	latency := c.Profile.LatencyMillis
	reliability := c.Profile.Reliability
	if s.tracker != nil {
		if obsLat, obsRel, calls, ok := s.tracker.Observed(c.Peer); ok {
			// Blend observation with advertisement; trust grows with
			// call volume.
			trust := math.Min(1, float64(calls)/20)
			latency = trust*obsLat + (1-trust)*latency
			reliability = trust*obsRel + (1-trust)*reliability
		}
	}
	// Normalize latency and cost through 1/(1+x) so lower is better
	// and the scale stays in (0,1].
	latScore := 1 / (1 + latency/100)
	costScore := 1 / (1 + c.Profile.CostPerCall)
	w := s.CurrentWeights()
	total := w.Latency + w.Cost + w.Reliability + w.Availability + w.Semantic
	if total == 0 {
		return 0
	}
	return (w.Latency*latScore +
		w.Cost*costScore +
		w.Reliability*reliability +
		w.Availability*c.Profile.Availability +
		w.Semantic*c.SemanticScore) / total
}

// Rank orders candidates best-first (stable for equal scores).
func (s *Selector) Rank(cands []Candidate) []Candidate {
	out := append([]Candidate(nil), cands...)
	sort.SliceStable(out, func(i, j int) bool { return s.Score(out[i]) > s.Score(out[j]) })
	return out
}

// Best returns the top candidate, or an error when none exist.
func (s *Selector) Best(cands []Candidate) (Candidate, error) {
	if len(cands) == 0 {
		return Candidate{}, fmt.Errorf("qos: no candidates")
	}
	best := cands[0]
	bestScore := s.Score(best)
	for _, c := range cands[1:] {
		if sc := s.Score(c); sc > bestScore {
			best, bestScore = c, sc
		}
	}
	return best, nil
}
