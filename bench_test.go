// Benchmark harness: one testing.B benchmark per table/figure of the
// paper's evaluation (see DESIGN.md §4 for the experiment index and
// EXPERIMENTS.md for paper-vs-measured values). The benchmarks report
// the experiment's headline quantity via b.ReportMetric, so
// `go test -bench=. -benchmem` regenerates every row; the full
// pretty-printed tables come from `go run ./cmd/whisper-bench`.
package whisper_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"whisper/internal/bench"
	"whisper/internal/simnet"
)

// BenchmarkFigure4MessagesVsPeers regenerates Figure 4: messages
// exchanged as the number of b-peers increases (experiment E1).
func BenchmarkFigure4MessagesVsPeers(b *testing.B) {
	for _, peers := range []int{2, 4, 6, 9} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			var total, bytes float64
			for i := 0; i < b.N; i++ {
				_, points, err := bench.Figure4(context.Background(), bench.Figure4Options{
					PeerCounts: []int{peers},
					Window:     800 * time.Millisecond,
					Requests:   25,
					Settle:     200 * time.Millisecond,
					Seed:       int64(i + 1),
				})
				if err != nil {
					b.Fatalf("figure4: %v", err)
				}
				total += float64(points[0].Total)
				bytes += float64(points[0].Bytes)
			}
			b.ReportMetric(total/float64(b.N), "msgs/window")
			b.ReportMetric(bytes/float64(b.N), "bytes/window")
		})
	}
}

// BenchmarkRTTSteadyState regenerates the §5 steady-state RTT
// measurement (experiment E2): the paper reports ~0.5 ms average
// message RTT on its 100 Mbit/s LAN.
func BenchmarkRTTSteadyState(b *testing.B) {
	c, err := bench.NewCluster(context.Background(), bench.ClusterOptions{Peers: 3, Seed: 1})
	if err != nil {
		b.Fatalf("cluster: %v", err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Invoke(ctx, c.StudentID(i)); err != nil {
			b.Fatalf("invoke: %v", err)
		}
	}
}

// BenchmarkRTTTransportPingPong isolates the raw message RTT the
// paper's monitor timestamps (the ~0.5 ms figure itself).
func BenchmarkRTTTransportPingPong(b *testing.B) {
	_, res, err := bench.RTT(context.Background(), bench.RTTOptions{Samples: max(b.N, 10), Peers: 2})
	if err != nil {
		b.Fatalf("rtt: %v", err)
	}
	b.ReportMetric(float64(res.Transport.Mean().Microseconds()), "µs/rtt-mean")
	b.ReportMetric(float64(res.Transport.Percentile(99).Microseconds()), "µs/rtt-p99")
}

// BenchmarkFailoverWorstCase regenerates the §5 worst-case RTT
// analysis (experiment E3): coordinator crash → failure detection →
// Bully election → proxy re-binding.
func BenchmarkFailoverWorstCase(b *testing.B) {
	var detectElect, unavailable, worst float64
	for i := 0; i < b.N; i++ {
		_, res, err := bench.Failover(context.Background(), bench.FailoverOptions{Peers: 4, Trials: 1, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("failover: %v", err)
		}
		detectElect += float64(res.DetectElect.Mean().Milliseconds())
		unavailable += float64(res.Unavailability.Mean().Milliseconds())
		worst += float64(res.WorstRTT.Milliseconds())
	}
	n := float64(b.N)
	b.ReportMetric(detectElect/n, "ms/detect+elect")
	b.ReportMetric(unavailable/n, "ms/unavailability")
	b.ReportMetric(worst/n, "ms/worst-rtt")
}

// BenchmarkThroughputScaling regenerates the §5 scalability claim
// (experiment E4): throughput and latency as the group grows.
func BenchmarkThroughputScaling(b *testing.B) {
	for _, peers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("peers=%d", peers), func(b *testing.B) {
			var coordinated, shared float64
			for i := 0; i < b.N; i++ {
				_, points, err := bench.Throughput(context.Background(), bench.ThroughputOptions{
					PeerCounts: []int{peers},
					Clients:    4,
					Duration:   800 * time.Millisecond,
					Seed:       int64(i + 1),
				})
				if err != nil {
					b.Fatalf("throughput: %v", err)
				}
				// Throughput returns one point per policy:
				// coordinated first, then load-sharing.
				coordinated += points[0].Throughput
				shared += points[1].Throughput
			}
			b.ReportMetric(coordinated/float64(b.N), "req/s-coordinated")
			b.ReportMetric(shared/float64(b.N), "req/s-loadsharing")
		})
	}
}

// BenchmarkDiscoveryPrecisionRecall regenerates experiment E5:
// semantic vs. syntactic discovery quality (§3.1/§4.3 claims).
func BenchmarkDiscoveryPrecisionRecall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DiscoveryQuality(context.Background(), bench.DiscoveryOptions{}); err != nil {
			b.Fatalf("discovery: %v", err)
		}
	}
}

// BenchmarkDiscoveryPrecisionRecallLive runs E5 through the live
// system: corpus groups deployed on the overlay, discovered via the
// SWS-proxy's semantic and syntactic paths.
func BenchmarkDiscoveryPrecisionRecallLive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := bench.DiscoveryQualityLive(context.Background(), bench.DiscoveryOptions{}); err != nil {
			b.Fatalf("live discovery: %v", err)
		}
	}
}

// BenchmarkBackendFailover regenerates experiment E6 (§4.1 scenario):
// operational DB outage transparently served by the data warehouse.
func BenchmarkBackendFailover(b *testing.B) {
	var switchMS float64
	for i := 0; i < b.N; i++ {
		_, res, err := bench.BackendFailover(context.Background(), bench.BackendFailoverOptions{
			Requests: 30, OutageAfter: 10, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatalf("backend failover: %v", err)
		}
		if res.Failed > 0 {
			b.Fatalf("%d requests failed during outage", res.Failed)
		}
		switchMS += float64(res.SwitchTime.Milliseconds())
	}
	b.ReportMetric(switchMS/float64(b.N), "ms/db-to-warehouse")
}

// BenchmarkQoSSelection regenerates experiment E7 (§2.4): QoS-aware
// selection vs. a semantics-only random baseline.
func BenchmarkQoSSelection(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		_, results, err := bench.QoSSelection(context.Background(), bench.QoSOptions{Requests: 30, Seed: int64(i + 1)})
		if err != nil {
			b.Fatalf("qos: %v", err)
		}
		random, aware := results[0], results[1]
		gain += float64(random.Latency.Mean()) / float64(aware.Latency.Mean())
	}
	b.ReportMetric(gain/float64(b.N), "x-latency-gain")
}

// BenchmarkAvailabilityComparison regenerates experiment E9: Whisper
// vs. WS-FTM-style client retry vs. no replication under a crash.
func BenchmarkAvailabilityComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, results, err := bench.Availability(context.Background(), bench.AvailabilityOptions{
			Requests: 30, CrashAfter: 10, Pacing: 2 * time.Millisecond, Seed: int64(i + 1),
		})
		if err != nil {
			b.Fatalf("availability: %v", err)
		}
		if results[0].Errors != 0 {
			b.Fatalf("whisper leaked %d errors", results[0].Errors)
		}
	}
}

// BenchmarkBullyElection regenerates experiment E8: election message
// count and convergence time vs. group size — the component behind
// the paper's "time needed to elect a new coordinator is considerably
// high".
func BenchmarkBullyElection(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("peers=%d", n), func(b *testing.B) {
			var msgs, converge float64
			for i := 0; i < b.N; i++ {
				_, points, err := bench.ElectionCost(context.Background(), bench.ElectionOptions{
					GroupSizes: []int{n}, Trials: 1, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatalf("election: %v", err)
				}
				msgs += points[0].AvgMessages
				converge += float64(points[0].AvgConverge.Milliseconds())
			}
			b.ReportMetric(msgs/float64(b.N), "msgs/election")
			b.ReportMetric(converge/float64(b.N), "ms/convergence")
		})
	}
}

// BenchmarkInvokeZeroLatency measures the pure software overhead of
// the full semantic invocation path (discovery cache hit + binding
// cache hit + pipe round trip + backend) with network latency removed.
func BenchmarkInvokeZeroLatency(b *testing.B) {
	c, err := bench.NewCluster(context.Background(), bench.ClusterOptions{
		Peers: 3, Seed: 1, Latency: simnet.ZeroLatency(),
	})
	if err != nil {
		b.Fatalf("cluster: %v", err)
	}
	defer func() { _ = c.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Minute)
	defer cancel()
	if _, err := c.Invoke(ctx, c.StudentID(0)); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Invoke(ctx, c.StudentID(i)); err != nil {
			b.Fatalf("invoke: %v", err)
		}
	}
}
