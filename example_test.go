package whisper_test

import (
	"context"
	"fmt"
	"time"

	"whisper"
)

// Example deploys the paper's running scenario end to end: a
// replicated StudentManagement b-peer group behind a WSDL-S-described
// semantic Web service, then invokes it and survives a coordinator
// crash.
func Example() {
	net := whisper.NewSimulatedLAN(1)
	defer func() { _ = net.Close() }()
	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      1,
		Timings: whisper.Timings{
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
		},
	})
	if err != nil {
		fmt.Println("deploy:", err)
		return
	}
	defer func() { _ = dep.Close() }()

	u := whisper.UniversityOntology()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	group, err := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name: "StudentManagement",
		Signature: whisper.Signature{
			Action:  u.Term("StudentInformation"),
			Inputs:  []string{u.Term("StudentID")},
			Outputs: []string{u.Term("StudentInfo")},
		},
		Handler: whisper.HandlerFunc(func(context.Context, string, []byte) ([]byte, error) {
			return []byte("<StudentInfo><Name>Maria Silva</Name></StudentInfo>"), nil
		}),
		Count: 3,
	})
	if err != nil {
		fmt.Println("group:", err)
		return
	}
	svc, err := dep.DeployService(whisper.StudentManagementWSDL(), whisper.ServiceOptions{})
	if err != nil {
		fmt.Println("service:", err)
		return
	}

	req := []byte("<StudentInformation><StudentID>S1</StudentID></StudentInformation>")
	out, err := svc.Invoke(ctx, "StudentInformation", req)
	if err != nil {
		fmt.Println("invoke:", err)
		return
	}
	fmt.Println(string(out))

	if _, err := group.CrashCoordinator(); err != nil {
		fmt.Println("crash:", err)
		return
	}
	out, err = svc.Invoke(ctx, "StudentInformation", req)
	if err != nil {
		fmt.Println("invoke after crash:", err)
		return
	}
	fmt.Println(string(out))
	// Output:
	// <StudentInfo><Name>Maria Silva</Name></StudentInfo>
	// <StudentInfo><Name>Maria Silva</Name></StudentInfo>
}

// ExampleNewReasoner shows semantic matching: synonym and subclass
// concepts match across different vocabularies.
func ExampleNewReasoner() {
	u := whisper.UniversityOntology()
	r := whisper.NewReasoner(u)
	fmt.Println(r.MatchConcepts(u.Term("StudentRecord"), u.Term("StudentInfo")))  // synonym
	fmt.Println(r.MatchConcepts(u.Term("TranscriptInfo"), u.Term("StudentInfo"))) // more specific
	fmt.Println(r.MatchConcepts(u.Term("EmployeeInfo"), u.Term("StudentInfo")))   // disjoint
	// Output:
	// exact
	// plugin
	// fail
}

// ExampleEstimateProcessQoS shows Cardoso's workflow QoS reduction.
func ExampleEstimateProcessQoS() {
	score := whisper.ProcessActivity{Name: "score",
		QoS: whisper.QoSProfile{LatencyMillis: 10, CostPerCall: 1, Reliability: 0.99, Availability: 1}}
	history := whisper.ProcessActivity{Name: "history",
		QoS: whisper.QoSProfile{LatencyMillis: 30, CostPerCall: 2, Reliability: 0.98, Availability: 1}}
	decide := whisper.ProcessActivity{Name: "decide",
		QoS: whisper.QoSProfile{LatencyMillis: 5, CostPerCall: 0, Reliability: 1, Availability: 1}}

	process := whisper.ProcessSequence{
		whisper.ProcessParallel{Branches: []whisper.Process{score, history}},
		decide,
	}
	est := whisper.EstimateProcessQoS(process)
	fmt.Printf("time=%.0fms cost=%.0f reliability=%.4f\n",
		est.LatencyMillis, est.CostPerCall, est.Reliability)
	// Output:
	// time=35ms cost=3 reliability=0.9702
}
