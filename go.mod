module whisper

go 1.22
