// Loanbroker demonstrates the paper's §2.4 QoS integration on the
// bank-loan motivating application: two semantically equivalent
// loan-decision groups compete — a fast, reliable "premium" bureau and
// a slow, flaky "budget" bureau. The SWS-proxy ranks them by QoS and
// routes to the premium group; when the premium group is shut down
// entirely, the proxy transparently falls back to the budget group.
//
//	go run ./examples/loanbroker
package main

import (
	"context"
	"encoding/xml"
	"fmt"
	"log"
	"time"

	"whisper"
)

// loanApplication is the request document.
type loanApplication struct {
	XMLName     xml.Name `xml:"EvaluateLoan"`
	ID          string   `xml:"ID"`
	ApplicantID string   `xml:"ApplicantID"`
	Amount      float64  `xml:"Amount"`
	TermMonths  int      `xml:"TermMonths"`
}

// score derives a deterministic credit score from the applicant ID so
// replicated bureaus agree.
func score(applicantID string) int {
	var h uint32 = 2166136261
	for i := 0; i < len(applicantID); i++ {
		h ^= uint32(applicantID[i])
		h *= 16777619
	}
	return 300 + int(h%551)
}

func bureauHandler(name string, delay time.Duration) whisper.Handler {
	return whisper.HandlerFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		time.Sleep(delay) // processing cost of this bureau
		var app loanApplication
		if err := xml.Unmarshal(payload, &app); err != nil {
			return nil, fmt.Errorf("bad application: %w", err)
		}
		s := score(app.ApplicantID)
		approved := s >= 500 && app.Amount <= float64(s)*50
		rate := 3 + 7*(850-float64(s))/550
		return []byte(fmt.Sprintf(
			"<LoanDecision><ApplicationID>%s</ApplicationID><Approved>%t</Approved><Score>%d</Score><RatePercent>%.2f</RatePercent><Bureau>%s</Bureau></LoanDecision>",
			app.ID, approved, s, rate, name)), nil
	})
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := whisper.NewSimulatedLAN(11)
	defer func() { _ = net.Close() }()
	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      11,
	})
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()

	b2b := whisper.B2BOntology()
	sig := whisper.Signature{
		Action:  b2b.Term("LoanApproval"),
		Inputs:  []string{b2b.Term("LoanApplication")},
		Outputs: []string{b2b.Term("LoanDecision")},
	}
	// The budget bureau advertises through synonym concepts
	// (CreditRequest ≡ LoanApplication, CreditScoring ⊑ LoanApproval):
	// still discovered, purely via the ontology.
	budgetSig := whisper.Signature{
		Action:  b2b.Term("CreditScoring"),
		Inputs:  []string{b2b.Term("CreditRequest")},
		Outputs: []string{b2b.Term("LoanOffer")},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	premium, err := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "premium-bureau",
		Signature: sig,
		QoS:       whisper.QoSProfile{LatencyMillis: 2, CostPerCall: 1.5, Reliability: 0.999, Availability: 0.999},
		Handler:   bureauHandler("premium", 2*time.Millisecond),
		Count:     2,
	})
	if err != nil {
		return err
	}
	if _, derr := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "budget-bureau",
		Signature: budgetSig,
		QoS:       whisper.QoSProfile{LatencyMillis: 25, CostPerCall: 0.1, Reliability: 0.9, Availability: 0.95},
		Handler:   bureauHandler("budget", 25*time.Millisecond),
		Count:     2,
	}); derr != nil {
		return derr
	}

	defs := whisper.NewWSDL("LoanBroker", "http://example.org/services/loans")
	defs.DeclareNamespace("b2b", "http://uma.pt/ontologies/B2B")
	itf := defs.AddInterface("LoanBrokerPort")
	itf.AddOperation("EvaluateLoan", "b2b:LoanApproval",
		[]whisper.WSDLMessageRef{{Label: "application", Element: "b2b:LoanApplication"}},
		[]whisper.WSDLMessageRef{{Label: "decision", Element: "b2b:LoanDecision"}},
	)
	svc, err := dep.DeployService(defs, whisper.ServiceOptions{})
	if err != nil {
		return err
	}

	evaluate := func(app loanApplication) error {
		body, err := xml.Marshal(app)
		if err != nil {
			return err
		}
		start := time.Now()
		out, err := svc.Invoke(ctx, "EvaluateLoan", body)
		if err != nil {
			return err
		}
		fmt.Printf("  (%6s) %s\n", time.Since(start).Round(time.Millisecond), out)
		return nil
	}

	fmt.Println("1) QoS-aware routing sends applications to the premium bureau:")
	apps := []loanApplication{
		{ID: "L1", ApplicantID: "ALICE-42", Amount: 12000, TermMonths: 36},
		{ID: "L2", ApplicantID: "BOB-7", Amount: 250000, TermMonths: 120},
	}
	for _, app := range apps {
		if err := evaluate(app); err != nil {
			return err
		}
	}

	fmt.Println("2) the premium bureau goes away entirely — the proxy falls back to the (synonym-advertised) budget bureau:")
	if err := premium.Close(); err != nil {
		return err
	}
	// Let the rendezvous lease of the premium group expire so
	// discovery stops returning it as bindable.
	time.Sleep(100 * time.Millisecond)
	for _, app := range apps {
		if err := evaluate(app); err != nil {
			return err
		}
	}
	return nil
}
