// Quickstart: deploy the paper's StudentManagement service on a
// simulated LAN, invoke it, crash the coordinator and watch the
// invocation succeed anyway.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"whisper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// 1. A simulated 100 Mbit/s LAN (the paper's testbed).
	net := whisper.NewSimulatedLAN(1)
	defer func() { _ = net.Close() }()

	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      1,
	})
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()

	// 2. A b-peer group: three replicas implementing the same
	// functionality, annotated with ontology concepts.
	u := whisper.UniversityOntology()
	sig := whisper.Signature{
		Action:  u.Term("StudentInformation"),
		Inputs:  []string{u.Term("StudentID")},
		Outputs: []string{u.Term("StudentInfo")},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	group, err := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "StudentManagement",
		Signature: sig,
		QoS:       whisper.QoSProfile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		Handler: whisper.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			return []byte("<StudentInfo><ID>S0001</ID><Name>Maria Silva</Name><Program>Informatics</Program></StudentInfo>"), nil
		}),
		Count: 3,
	})
	if err != nil {
		return err
	}
	fmt.Printf("deployed group %q, coordinator at %s\n", group.Name(), group.Coordinator())

	// 3. The semantic Web service (WSDL-S) in front of the group.
	svc, err := dep.DeployService(whisper.StudentManagementWSDL(), whisper.ServiceOptions{})
	if err != nil {
		return err
	}

	request := []byte("<StudentInformation><StudentID>S0001</StudentID></StudentInformation>")
	out, err := svc.Invoke(ctx, "StudentInformation", request)
	if err != nil {
		return err
	}
	fmt.Printf("response: %s\n", out)

	// 4. Fault tolerance: crash the coordinator; the next request is
	// served by a freshly elected replica.
	crashed, err := group.CrashCoordinator()
	if err != nil {
		return err
	}
	fmt.Printf("crashed coordinator %s — invoking again...\n", crashed)
	start := time.Now()
	out, err = svc.Invoke(ctx, "StudentInformation", request)
	if err != nil {
		return err
	}
	fmt.Printf("response after failover (%v): %s\n", time.Since(start).Round(time.Millisecond), out)
	fmt.Printf("proxy re-bindings: %d\n", svc.Proxy().Rebinds())
	return nil
}
