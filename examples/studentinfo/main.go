// Studentinfo runs the paper's full §3–§4 scenario end to end over a
// real SOAP/HTTP endpoint: a client posts a SOAP request to the
// StudentManagement Web service; the SWS-proxy semantically discovers
// the b-peer group; the coordinator answers from the operational
// database. The example then takes the database down — the DB peer
// fail-stops, the Bully election promotes the data-warehouse peer, and
// the same SOAP request transparently succeeds from the warehouse
// (the paper's §4.1 scenario).
//
//	go run ./examples/studentinfo
package main

import (
	"context"
	"encoding/xml"
	"errors"
	"fmt"
	"log"
	"net/http/httptest"
	"sync"
	"time"

	"whisper"
)

// studentRow is the application's data record.
type studentRow struct {
	ID, Name, Program string
}

// dataset is the shared seed data both stores serve.
var dataset = []studentRow{
	{"S0001", "Maria Silva", "Informatics"},
	{"S0002", "Joao Santos", "Mathematics"},
	{"S0003", "Ana Ferreira", "Biology"},
}

// errUnavailable marks a dead backend; the b-peer fail-stops on it.
var errUnavailable = errors.New("backend unavailable")

// store is a minimal switchable backend.
type store struct {
	name string
	mu   sync.Mutex
	up   bool
	rows map[string]studentRow
}

func newStore(name string) *store {
	s := &store{name: name, up: true, rows: make(map[string]studentRow, len(dataset))}
	for _, r := range dataset {
		s.rows[r.ID] = r
	}
	return s
}

func (s *store) setUp(up bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.up = up
}

func (s *store) lookup(id string) (studentRow, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.up {
		return studentRow{}, fmt.Errorf("%s: %w", s.name, errUnavailable)
	}
	row, ok := s.rows[id]
	if !ok {
		return studentRow{}, fmt.Errorf("student %q not found", id)
	}
	return row, nil
}

// handler adapts a store to a Whisper b-peer handler.
func handler(st *store) whisper.Handler {
	return whisper.HandlerFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		var req struct {
			StudentID string `xml:"StudentID"`
		}
		if err := xml.Unmarshal(payload, &req); err != nil {
			return nil, fmt.Errorf("bad request: %w", err)
		}
		row, err := st.lookup(req.StudentID)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf(
			"<StudentInfo><ID>%s</ID><Name>%s</Name><Program>%s</Program><Source>%s</Source></StudentInfo>",
			row.ID, row.Name, row.Program, st.name)), nil
	})
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := whisper.NewSimulatedLAN(7)
	defer func() { _ = net.Close() }()
	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      7,
	})
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()

	db := newStore("operational-db")
	warehouse := newStore("data-warehouse")
	failStop := func(err error) bool { return errors.Is(err, errUnavailable) }

	u := whisper.UniversityOntology()
	sig := whisper.Signature{
		Action:  u.Term("StudentInformation"),
		Inputs:  []string{u.Term("StudentID")},
		Outputs: []string{u.Term("StudentInfo")},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, derr := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "StudentManagement",
		Signature: sig,
		Replicas: []whisper.ReplicaSpec{
			{Name: "warehouse-peer", Handler: handler(warehouse), FailStop: failStop},
			{Name: "db-peer", Handler: handler(db), FailStop: failStop}, // highest rank → coordinator
		},
	}); derr != nil {
		return derr
	}

	svc, err := dep.DeployService(whisper.StudentManagementWSDL(), whisper.ServiceOptions{})
	if err != nil {
		return err
	}

	// A real HTTP endpoint and a real SOAP client, like the paper's
	// Figure 2.
	httpSrv := httptest.NewServer(svc.Handler())
	defer httpSrv.Close()
	client := whisper.NewSOAPClient(httpSrv.URL)
	fmt.Printf("SOAP endpoint at %s\n", httpSrv.URL)

	ask := func(id string) error {
		env, err := client.CallRaw(ctx, "StudentInformation",
			[]byte("<StudentInformation><StudentID>"+id+"</StudentID></StudentInformation>"))
		if err != nil {
			return err
		}
		if env.Fault != nil {
			fmt.Printf("  soap:Fault %s: %s\n", env.Fault.Code, env.Fault.Reason)
			return nil
		}
		fmt.Printf("  %s\n", env.BodyXML)
		return nil
	}

	fmt.Println("1) steady state — answered by the operational database:")
	if err := ask("S0001"); err != nil {
		return err
	}

	fmt.Println("2) taking the operational database down...")
	db.setUp(false)

	fmt.Println("3) same request — the DB peer fail-stops, the warehouse peer is elected and answers:")
	if err := ask("S0001"); err != nil {
		return err
	}

	fmt.Println("4) unknown students still produce a proper soap:Fault:")
	return ask("S9999")
}
