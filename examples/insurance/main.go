// Insurance runs the B2B motivating application from the paper's
// introduction: an insurance-claim processing service. It builds a
// custom WSDL-S document against the B2B ontology, deploys two
// replicated claim adjudicators, and shows that a synonym-annotated
// group (CreditRequest ≡ LoanApplication style equivalences) is still
// discovered semantically while a disjoint service (loan approval) is
// never matched.
//
//	go run ./examples/insurance
package main

import (
	"context"
	"encoding/xml"
	"fmt"
	"log"
	"strings"
	"time"

	"whisper"
)

// claim is the request document.
type claim struct {
	XMLName  xml.Name `xml:"ProcessClaim"`
	ClaimID  string   `xml:"ClaimID"`
	PolicyID string   `xml:"PolicyID"`
	Amount   float64  `xml:"Amount"`
}

// adjudicate implements deterministic claim rules shared by replicas.
func adjudicate(c claim) (status, reason string, payout float64) {
	switch {
	case !strings.HasPrefix(c.PolicyID, "P"):
		return "rejected", "unknown policy", 0
	case c.Amount <= 0:
		return "rejected", "non-positive amount", 0
	case c.Amount > 10000:
		return "pending-review", "amount exceeds auto-approval limit", 0
	default:
		return "approved", "", c.Amount * 0.9
	}
}

func claimHandler(replica string) whisper.Handler {
	return whisper.HandlerFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		var c claim
		if err := xml.Unmarshal(payload, &c); err != nil {
			return nil, fmt.Errorf("bad claim: %w", err)
		}
		status, reason, payout := adjudicate(c)
		return []byte(fmt.Sprintf(
			"<ClaimStatus><ClaimID>%s</ClaimID><Status>%s</Status><Payout>%.2f</Payout><Reason>%s</Reason><Replica>%s</Replica></ClaimStatus>",
			c.ClaimID, status, payout, reason, replica)), nil
	})
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	net := whisper.NewSimulatedLAN(3)
	defer func() { _ = net.Close() }()
	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      3,
	})
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()

	b2b := whisper.B2BOntology()
	loanSig := whisper.Signature{
		Action:  b2b.Term("LoanApproval"),
		Inputs:  []string{b2b.Term("LoanApplication")},
		Outputs: []string{b2b.Term("LoanDecision")},
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	// The claims group: two replicas, advertised with a more specific
	// action (ClaimAdjudication ⊑ ClaimProcessing) — a plugin match.
	specificSig := whisper.Signature{
		Action:  b2b.Term("ClaimAdjudication"),
		Inputs:  []string{b2b.Term("ClaimID")},
		Outputs: []string{b2b.Term("ClaimSettlement")}, // ⊑ ClaimStatus
	}
	if _, derr := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "ClaimAdjudicators",
		Signature: specificSig,
		QoS:       whisper.QoSProfile{LatencyMillis: 3, Reliability: 0.995, Availability: 0.999},
		Replicas: []whisper.ReplicaSpec{
			{Name: "adjudicator-1", Handler: claimHandler("adjudicator-1")},
			{Name: "adjudicator-2", Handler: claimHandler("adjudicator-2")},
		},
	}); derr != nil {
		return derr
	}
	// A decoy group with disjoint semantics (loan approval): the
	// proxy must never route claims here.
	if _, derr := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "LoanApprovers",
		Signature: loanSig,
		Handler: whisper.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			return []byte("<LoanDecision>should never be reached by claims</LoanDecision>"), nil
		}),
		Count: 1,
	}); derr != nil {
		return derr
	}

	// Build the claims WSDL-S programmatically against the B2B
	// ontology (the requested semantics: ClaimProcessing action).
	defs := whisper.NewWSDL("ClaimProcessing", "http://example.org/services/claims")
	defs.DeclareNamespace("b2b", "http://uma.pt/ontologies/B2B")
	itf := defs.AddInterface("ClaimProcessingPort")
	itf.AddOperation("ProcessClaim", "b2b:ClaimProcessing",
		[]whisper.WSDLMessageRef{{Label: "claim", Element: "b2b:ClaimID"}},
		[]whisper.WSDLMessageRef{{Label: "status", Element: "b2b:ClaimStatus"}},
	)

	svc, err := dep.DeployService(defs, whisper.ServiceOptions{})
	if err != nil {
		return err
	}

	process := func(c claim) error {
		body, err := xml.Marshal(c)
		if err != nil {
			return err
		}
		out, err := svc.Invoke(ctx, "ProcessClaim", body)
		if err != nil {
			fmt.Printf("  claim %s: ERROR %v\n", c.ClaimID, err)
			return nil
		}
		fmt.Printf("  %s\n", out)
		return nil
	}

	fmt.Println("processing claims through the semantic service (plugin-matched group):")
	claims := []claim{
		{ClaimID: "C100", PolicyID: "P0042", Amount: 1200},
		{ClaimID: "C101", PolicyID: "P0042", Amount: 50000},
		{ClaimID: "C102", PolicyID: "X9999", Amount: 700},
	}
	for _, c := range claims {
		if err := process(c); err != nil {
			return err
		}
	}
	return nil
}
