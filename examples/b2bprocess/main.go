// B2bprocess composes Whisper services into a business process — the
// paper's motivating setting ("the downtime of services can easily
// incapacitate the completion of running business processes"). A
// customer-onboarding process runs credit scoring and claim-history
// retrieval in parallel, then a final decision step; every activity is
// a fault-tolerant semantic service backed by replicated b-peers, so
// the process survives a coordinator crash mid-run.
//
//	go run ./examples/b2bprocess
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"whisper"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

// deployB2BServices brings up the two backing services.
func deployB2BServices(ctx context.Context, dep *whisper.Deployment) (scoring, claims *whisper.Service, scoringGroup *whisper.Group, err error) {
	b2b := whisper.B2BOntology()

	scoringGroup, err = dep.DeployGroup(ctx, whisper.GroupSpec{
		Name: "credit-scoring",
		Signature: whisper.Signature{
			Action:  b2b.Term("CreditScoring"),
			Inputs:  []string{b2b.Term("LoanApplication")},
			Outputs: []string{b2b.Term("LoanDecision")},
		},
		QoS: whisper.QoSProfile{LatencyMillis: 5, CostPerCall: 0.5, Reliability: 0.99, Availability: 0.99},
		Handler: whisper.HandlerFunc(func(_ context.Context, _ string, in []byte) ([]byte, error) {
			return []byte("<Score applicant=\"" + extract(in, "Applicant") + "\">720</Score>"), nil
		}),
		Count: 3,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err = dep.DeployGroup(ctx, whisper.GroupSpec{
		Name: "claim-history",
		Signature: whisper.Signature{
			Action:  b2b.Term("ClaimProcessing"),
			Inputs:  []string{b2b.Term("ClaimID")},
			Outputs: []string{b2b.Term("ClaimStatus")},
		},
		QoS: whisper.QoSProfile{LatencyMillis: 8, CostPerCall: 0.2, Reliability: 0.98, Availability: 0.99},
		Handler: whisper.HandlerFunc(func(_ context.Context, _ string, in []byte) ([]byte, error) {
			return []byte("<ClaimHistory applicant=\"" + extract(in, "Applicant") + "\">0 open claims</ClaimHistory>"), nil
		}),
		Count: 2,
	}); err != nil {
		return nil, nil, nil, err
	}

	scoringDefs := whisper.NewWSDL("CreditScoring", "http://example.org/services/scoring")
	scoringDefs.DeclareNamespace("b2b", "http://uma.pt/ontologies/B2B")
	scoringDefs.AddInterface("ScoringPort").AddOperation("ScoreApplicant", "b2b:LoanApproval",
		[]whisper.WSDLMessageRef{{Label: "app", Element: "b2b:LoanApplication"}},
		[]whisper.WSDLMessageRef{{Label: "decision", Element: "b2b:LoanDecision"}},
	)
	scoring, err = dep.DeployService(scoringDefs, whisper.ServiceOptions{})
	if err != nil {
		return nil, nil, nil, err
	}

	claimDefs := whisper.NewWSDL("ClaimHistory", "http://example.org/services/claims")
	claimDefs.DeclareNamespace("b2b", "http://uma.pt/ontologies/B2B")
	claimDefs.AddInterface("ClaimPort").AddOperation("ClaimHistory", "b2b:ClaimProcessing",
		[]whisper.WSDLMessageRef{{Label: "claim", Element: "b2b:ClaimID"}},
		[]whisper.WSDLMessageRef{{Label: "history", Element: "b2b:ClaimStatus"}},
	)
	claims, err = dep.DeployService(claimDefs, whisper.ServiceOptions{})
	if err != nil {
		return nil, nil, nil, err
	}
	return scoring, claims, scoringGroup, nil
}

// extract pulls a quoted attribute-ish token from the toy payloads.
func extract(in []byte, key string) string {
	s := string(in)
	i := strings.Index(s, "<"+key+">")
	j := strings.Index(s, "</"+key+">")
	if i < 0 || j < 0 {
		return "unknown"
	}
	return s[i+len(key)+2 : j]
}

func run() error {
	net := whisper.NewSimulatedLAN(5)
	defer func() { _ = net.Close() }()
	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      5,
	})
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	scoring, claims, scoringGroup, err := deployB2BServices(ctx, dep)
	if err != nil {
		return err
	}

	// The onboarding process: (scoring ∥ claim history) → decision.
	onboarding := whisper.ProcessSequence{
		whisper.ProcessParallel{
			Branches: []whisper.Process{
				whisper.ProcessActivity{
					Name: "credit-scoring",
					QoS:  whisper.QoSProfile{LatencyMillis: 5, CostPerCall: 0.5, Reliability: 0.99, Availability: 0.99},
					Invoke: func(ctx context.Context, in []byte) ([]byte, error) {
						return scoring.Invoke(ctx, "ScoreApplicant", in)
					},
				},
				whisper.ProcessActivity{
					Name: "claim-history",
					QoS:  whisper.QoSProfile{LatencyMillis: 8, CostPerCall: 0.2, Reliability: 0.98, Availability: 0.99},
					Invoke: func(ctx context.Context, in []byte) ([]byte, error) {
						return claims.Invoke(ctx, "ClaimHistory", in)
					},
				},
			},
			Join: func(outs [][]byte) []byte {
				return []byte("<Evidence>" + string(outs[0]) + string(outs[1]) + "</Evidence>")
			},
		},
		whisper.ProcessActivity{
			Name: "decide",
			QoS:  whisper.QoSProfile{LatencyMillis: 1, Reliability: 1, Availability: 1},
			Invoke: func(_ context.Context, evidence []byte) ([]byte, error) {
				approved := strings.Contains(string(evidence), "720") &&
					strings.Contains(string(evidence), "0 open claims")
				return []byte(fmt.Sprintf("<OnboardingDecision approved=%q>%s</OnboardingDecision>",
					fmt.Sprint(approved), evidence)), nil
			},
		},
	}
	if verr := whisper.ValidateProcess(onboarding); verr != nil {
		return verr
	}
	est := whisper.EstimateProcessQoS(onboarding)
	fmt.Printf("estimated process QoS: time=%.1fms cost=%.2f reliability=%.4f\n",
		est.LatencyMillis, est.CostPerCall, est.Reliability)

	engine := whisper.NewProcessEngine()
	input := []byte("<Onboard><Applicant>ACME-42</Applicant></Onboard>")

	out, err := engine.Run(ctx, onboarding, input)
	if err != nil {
		return err
	}
	fmt.Printf("1) process result: %s\n", out)

	// Crash the credit-scoring coordinator mid-business: the next
	// process run still completes because the b-peer group fails over
	// underneath the process.
	crashed, err := scoringGroup.CrashCoordinator()
	if err != nil {
		return err
	}
	fmt.Printf("2) crashed scoring coordinator %s — rerunning the process...\n", crashed)
	start := time.Now()
	out, err = engine.Run(ctx, onboarding, input)
	if err != nil {
		return err
	}
	fmt.Printf("3) process survived (%v): %s\n", time.Since(start).Round(time.Millisecond), out)
	return nil
}
