// Command whisperlint runs Whisper's project-specific static-analysis
// suite (internal/analysis) over Go packages. It has two modes:
//
// Standalone, for humans and CI:
//
//	go run ./cmd/whisperlint ./...
//
// loads packages with `go list` and prints one line per violation,
// exiting 1 if any are found.
//
// As a vet tool, so the suite slots into the standard toolchain:
//
//	go vet -vettool=$(which whisperlint) ./...
//
// In that mode cmd/go invokes whisperlint once per package with a
// vet.cfg describing the files; the protocol (the -V=full handshake,
// the VetxOutput side file, diagnostics on stderr with exit 2) is the
// same one golang.org/x/tools' unitchecker speaks.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"whisper/internal/analysis"
)

// version is the string reported to cmd/go's -V=full handshake; cmd/go
// uses the whole line as the tool's cache key, so bump it when analyzer
// behaviour changes to invalidate stale vet results.
const version = "2.0.0"

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("whisperlint", flag.ExitOnError)
	fs.Usage = usage
	vFlag := fs.String("V", "", "print version and exit (cmd/go handshake)")
	flagsFlag := fs.Bool("flags", false, "describe flags in JSON (cmd/go handshake)")
	listFlag := fs.Bool("list", false, "list the analyzers in the suite and exit")
	jsonFlag := fs.Bool("json", false, "emit diagnostics as JSON (standalone mode)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *vFlag != "" {
		// cmd/go probes `tool -V=full` and requires "<name> version <ver>".
		fmt.Printf("whisperlint version %s\n", version)
		return 0
	}
	if *flagsFlag {
		// cmd/go probes `tool -flags` for the tool's flag set; this suite
		// exposes none of its flags through go vet.
		fmt.Println("[]")
		return 0
	}
	if *listFlag {
		for _, a := range analysis.All() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	rest := fs.Args()
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVetTool(rest[0])
	}
	return runStandalone(rest, *jsonFlag)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: whisperlint [packages]

Runs the Whisper analyzer suite over the named packages (./... by
default). Also usable as go vet -vettool=$(which whisperlint) ./...

Flags:
  -list   list the analyzers and exit
  -json   emit diagnostics as JSON
`)
}

// listPackage is the subset of `go list -json` output the standalone
// loader needs.
type listPackage struct {
	Dir          string
	ImportPath   string
	GoFiles      []string
	CgoFiles     []string
	TestGoFiles  []string
	XTestGoFiles []string
	Error        *struct{ Err string }
}

func runStandalone(patterns []string, asJSON bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"list", "-e", "-json"}, patterns...)...)
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "whisperlint: go list: %v\n", err)
		return 2
	}

	// All packages load into one Project so the interprocedural
	// analyzers (lockheld, lockorder, allocbudget, retryloop) see
	// cross-package call edges; go vet mode degrades to one-package
	// projects because cmd/go invokes the tool per package.
	var pkgs []*analysis.Package
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			fmt.Fprintf(os.Stderr, "whisperlint: decoding go list output: %v\n", err)
			return 2
		}
		if p.Error != nil {
			fmt.Fprintf(os.Stderr, "whisperlint: %s: %s\n", p.ImportPath, p.Error.Err)
			return 2
		}
		var files []string
		for _, group := range [][]string{p.GoFiles, p.CgoFiles, p.TestGoFiles, p.XTestGoFiles} {
			for _, f := range group {
				files = append(files, filepath.Join(p.Dir, f))
			}
		}
		if len(files) == 0 {
			continue
		}
		pkg, err := analysis.LoadFiles(p.ImportPath, files)
		if err != nil {
			fmt.Fprintf(os.Stderr, "whisperlint: %s: %v\n", p.ImportPath, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
	}
	var diags []analysis.Diagnostic
	if len(pkgs) > 0 {
		diags = analysis.RunProject(analysis.NewProject(pkgs...), analysis.All())
	}

	if asJSON {
		if diags == nil {
			diags = []analysis.Diagnostic{} // encode a clean run as [], not null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "whisperlint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "whisperlint: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// vetConfig mirrors the JSON cmd/go writes for vet tools; only the
// fields this suite consumes are declared.
type vetConfig struct {
	ImportPath string
	GoFiles    []string
	VetxOnly   bool
	VetxOutput string
}

// runVetTool speaks the cmd/go vet-tool protocol: read the config,
// write the (empty — this suite exports no facts) VetxOutput so cmd/go
// can cache the run, and report diagnostics for the target package on
// stderr with exit status 2.
func runVetTool(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whisperlint: reading vet config: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if uerr := json.Unmarshal(data, &cfg); uerr != nil {
		fmt.Fprintf(os.Stderr, "whisperlint: parsing vet config %s: %v\n", cfgPath, uerr)
		return 1
	}
	if cfg.VetxOutput != "" {
		if werr := os.WriteFile(cfg.VetxOutput, []byte("whisperlint\n"), 0o666); werr != nil {
			fmt.Fprintf(os.Stderr, "whisperlint: writing %s: %v\n", cfg.VetxOutput, werr)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency package analyzed only for facts; no diagnostics.
		return 0
	}

	// Test variants arrive as "path [path.test]"; the scoped analyzers
	// key on the plain import path.
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i]
	}

	var goFiles []string
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, ".go") {
			goFiles = append(goFiles, f)
		}
	}
	if len(goFiles) == 0 {
		return 0
	}
	pkg, err := analysis.LoadFiles(importPath, goFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whisperlint: %s: %v\n", importPath, err)
		return 1
	}
	diags := analysis.Run(pkg, analysis.All())
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
