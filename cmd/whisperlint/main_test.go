package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func writeVetCfg(t *testing.T, dir string, cfg vetConfig) string {
	t.Helper()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "vet.cfg")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestVetToolReportsViolations(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "engine.go")
	if err := os.WriteFile(src, []byte(`package chaos

import "time"

func stamp() time.Time { return time.Now() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeVetCfg(t, dir, vetConfig{
		ImportPath: "whisper/internal/chaos [whisper/internal/chaos.test]",
		GoFiles:    []string{src},
		VetxOutput: vetx,
	})

	if got := run([]string{cfg}); got != 2 {
		t.Errorf("run(dirty cfg) = %d, want 2", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestVetToolVetxOnlySuppressesDiagnostics(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "engine.go")
	if err := os.WriteFile(src, []byte(`package chaos

import "time"

func stamp() time.Time { return time.Now() }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	vetx := filepath.Join(dir, "out.vetx")
	cfg := writeVetCfg(t, dir, vetConfig{
		ImportPath: "whisper/internal/chaos",
		GoFiles:    []string{src},
		VetxOnly:   true,
		VetxOutput: vetx,
	})

	if got := run([]string{cfg}); got != 0 {
		t.Errorf("run(VetxOnly cfg) = %d, want 0 (dependencies report nothing)", got)
	}
	if _, err := os.Stat(vetx); err != nil {
		t.Errorf("VetxOutput not written: %v", err)
	}
}

func TestVetToolCleanPackage(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "ok.go")
	if err := os.WriteFile(src, []byte(`package ok

func fine() int { return 1 }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := writeVetCfg(t, dir, vetConfig{
		ImportPath: "whisper/internal/ok",
		GoFiles:    []string{src},
	})
	if got := run([]string{cfg}); got != 0 {
		t.Errorf("run(clean cfg) = %d, want 0", got)
	}
}
