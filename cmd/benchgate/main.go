// Command benchgate compares `go test -bench` output against a
// committed JSON baseline and fails on regressions — the CI
// bench-gate.
//
// Usage:
//
//	go test -bench . -benchmem -count=6 ./internal/p2p ./internal/proxy ./internal/soap > bench.txt
//	benchgate -baseline BENCH_gate.json -input bench.txt -out bench-current.json
//	benchgate -update BENCH_gate.json -input bench.txt   # refresh the baseline
//	benchgate -overload BENCH_overload.json              # validate the E12 knee
//	benchgate -follower BENCH_followers.json             # validate the E13 scaling
//	benchgate -gossip BENCH_gossip.json                  # validate the E14 dissemination bounds
//
// The gate fails (exit 1) when a benchmark's p95 ns/op or allocs/op
// grew more than -threshold (default 20%) over the baseline.
// Benchmarks new to either side are reported but do not fail the
// gate; refresh the baseline to adopt them.
//
// With -overload the gate instead validates a BENCH_overload.json
// report against E12's absolute acceptance bounds: protected goodput
// at the top multiplier at least -goodput-ratio times the unprotected
// goodput, protected p99 within -p99-ratio of its 1x value, zero
// deadline-violating admitted requests and zero duplicate executions.
//
// With -follower the gate validates a BENCH_followers.json report
// against E13's bounds: follower-read goodput at the largest replica
// count at least -scaling times the coordinator-only goodput, zero
// stale reads, the staleness invariant actually exercised, and reads
// spread across at least -spread distinct replicas.
//
// With -gossip the gate validates a BENCH_gossip.json report against
// E14's bounds: epidemic dissemination must use at least -min-ratio
// times fewer messages than the flood baseline at every advertisement
// count, and the convergence sweep must stay within -log-factor ×
// (1 + log2 n) rumor intervals — O(log n) rounds, not linear.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"whisper/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "BENCH_gate.json", "committed baseline to compare against")
		input     = fs.String("input", "-", "go test -bench output file (- for stdin)")
		out       = fs.String("out", "", "write the current aggregates as JSON (CI artifact)")
		update    = fs.String("update", "", "write a fresh baseline to this path instead of comparing")
		threshold = fs.Float64("threshold", 0.20, "fractional regression threshold on p95 ns/op and allocs/op")
		overload  = fs.String("overload", "", "validate this BENCH_overload.json against the E12 bounds instead of gating bench output")
		goodRatio = fs.Float64("goodput-ratio", 3, "overload: required protected/unprotected goodput ratio at the top multiplier")
		p99Ratio  = fs.Float64("p99-ratio", 2, "overload: allowed protected p99 growth from the lowest to the top multiplier")
		follower  = fs.String("follower", "", "validate this BENCH_followers.json against the E13 bounds instead of gating bench output")
		scaling   = fs.Float64("scaling", 2.5, "follower: required follower/coordinator goodput ratio at the largest replica count")
		spread    = fs.Int("spread", 2, "follower: minimum distinct replicas that must have served reads")
		gossipRep = fs.String("gossip", "", "validate this BENCH_gossip.json against the E14 bounds instead of gating bench output")
		minRatio  = fs.Float64("min-ratio", 10, "gossip: required flood/gossip message ratio at every advertisement count")
		logFactor = fs.Float64("log-factor", 2, "gossip: allowed multiple of (1+log2 n) rumor intervals for the convergence sweep")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *overload != "" {
		report, err := bench.LoadReport(*overload)
		if err != nil {
			return err
		}
		findings := bench.CheckOverload(report, bench.OverloadBounds{
			MinGoodputRatio: *goodRatio,
			MaxP99Ratio:     *p99Ratio,
		})
		if len(findings) > 0 {
			for _, f := range findings {
				fmt.Fprintf(stdout, "OVERLOAD GATE %s\n", f)
			}
			return fmt.Errorf("%d overload-gate violation(s) in %s", len(findings), *overload)
		}
		fmt.Fprintf(stdout, "overload gate passed: %s holds the E12 bounds (goodput >=%.1fx, p99 <=%.1fx, 0 violations, 0 duplicates)\n",
			*overload, *goodRatio, *p99Ratio)
		return nil
	}

	if *follower != "" {
		report, err := bench.LoadReport(*follower)
		if err != nil {
			return err
		}
		findings := bench.CheckFollowers(report, bench.FollowerBounds{
			MinScaling: *scaling,
			MinSpread:  *spread,
		})
		if len(findings) > 0 {
			for _, f := range findings {
				fmt.Fprintf(stdout, "FOLLOWER GATE %s\n", f)
			}
			return fmt.Errorf("%d follower-gate violation(s) in %s", len(findings), *follower)
		}
		fmt.Fprintf(stdout, "follower gate passed: %s holds the E13 bounds (scaling >=%.1fx, 0 stale reads, spread >=%d)\n",
			*follower, *scaling, *spread)
		return nil
	}

	if *gossipRep != "" {
		report, err := bench.LoadReport(*gossipRep)
		if err != nil {
			return err
		}
		findings := bench.CheckGossip(report, bench.GossipBounds{
			MinRatio:        *minRatio,
			MaxRoundsFactor: *logFactor,
		})
		if len(findings) > 0 {
			for _, f := range findings {
				fmt.Fprintf(stdout, "GOSSIP GATE %s\n", f)
			}
			return fmt.Errorf("%d gossip-gate violation(s) in %s", len(findings), *gossipRep)
		}
		fmt.Fprintf(stdout, "gossip gate passed: %s holds the E14 bounds (ratio >=%.1fx, convergence within %.1fx of O(log n) rounds)\n",
			*gossipRep, *minRatio, *logFactor)
		return nil
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		in = f
	}
	samples, err := bench.ParseBenchOutput(in)
	if err != nil {
		return err
	}
	current := bench.AggregateSamples(samples)
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	fmt.Fprintf(stdout, "parsed %d benchmarks\n", len(current))

	if *out != "" {
		data, merr := json.MarshalIndent(map[string]any{"benchmarks": current}, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile(*out, append(data, '\n'), 0o644); werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "wrote current aggregates to %s\n", *out)
	}

	if *update != "" {
		if werr := bench.WriteGateBaseline(*update, current); werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "baseline updated: %s\n", *update)
		return nil
	}

	base, err := bench.LoadGateBaseline(*baseline)
	if err != nil {
		return err
	}
	regs, missing, fresh := bench.CompareToBaseline(base.Benchmarks, current, *threshold)
	for _, name := range missing {
		fmt.Fprintf(stdout, "warning: baseline benchmark missing from run: %s\n", name)
	}
	for _, name := range fresh {
		fmt.Fprintf(stdout, "note: new benchmark not in baseline: %s\n", name)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(stdout, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%%", len(regs), *threshold*100)
	}
	fmt.Fprintf(stdout, "gate passed: no regression beyond %.0f%% against %s\n", *threshold*100, *baseline)
	return nil
}
