// Command benchgate compares `go test -bench` output against a
// committed JSON baseline and fails on regressions — the CI
// bench-gate.
//
// Usage:
//
//	go test -bench . -benchmem -count=6 ./internal/p2p ./internal/proxy ./internal/soap > bench.txt
//	benchgate -baseline BENCH_gate.json -input bench.txt -out bench-current.json
//	benchgate -update BENCH_gate.json -input bench.txt   # refresh the baseline
//
// The gate fails (exit 1) when a benchmark's p95 ns/op or allocs/op
// grew more than -threshold (default 20%) over the baseline.
// Benchmarks new to either side are reported but do not fail the
// gate; refresh the baseline to adopt them.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"whisper/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	var (
		baseline  = fs.String("baseline", "BENCH_gate.json", "committed baseline to compare against")
		input     = fs.String("input", "-", "go test -bench output file (- for stdin)")
		out       = fs.String("out", "", "write the current aggregates as JSON (CI artifact)")
		update    = fs.String("update", "", "write a fresh baseline to this path instead of comparing")
		threshold = fs.Float64("threshold", 0.20, "fractional regression threshold on p95 ns/op and allocs/op")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	in := os.Stdin
	if *input != "-" {
		f, err := os.Open(*input)
		if err != nil {
			return err
		}
		defer func() { _ = f.Close() }()
		in = f
	}
	samples, err := bench.ParseBenchOutput(in)
	if err != nil {
		return err
	}
	current := bench.AggregateSamples(samples)
	if len(current) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	fmt.Fprintf(stdout, "parsed %d benchmarks\n", len(current))

	if *out != "" {
		data, merr := json.MarshalIndent(map[string]any{"benchmarks": current}, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile(*out, append(data, '\n'), 0o644); werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "wrote current aggregates to %s\n", *out)
	}

	if *update != "" {
		if werr := bench.WriteGateBaseline(*update, current); werr != nil {
			return werr
		}
		fmt.Fprintf(stdout, "baseline updated: %s\n", *update)
		return nil
	}

	base, err := bench.LoadGateBaseline(*baseline)
	if err != nil {
		return err
	}
	regs, missing, fresh := bench.CompareToBaseline(base.Benchmarks, current, *threshold)
	for _, name := range missing {
		fmt.Fprintf(stdout, "warning: baseline benchmark missing from run: %s\n", name)
	}
	for _, name := range fresh {
		fmt.Fprintf(stdout, "note: new benchmark not in baseline: %s\n", name)
	}
	if len(regs) > 0 {
		for _, r := range regs {
			fmt.Fprintf(stdout, "REGRESSION %s\n", r)
		}
		return fmt.Errorf("%d benchmark regression(s) beyond %.0f%%", len(regs), *threshold*100)
	}
	fmt.Fprintf(stdout, "gate passed: no regression beyond %.0f%% against %s\n", *threshold*100, *baseline)
	return nil
}
