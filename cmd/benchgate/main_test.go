package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"whisper/internal/bench"
)

// writeGossipReport writes a BENCH_gossip.json with the given metrics
// and returns its path.
func writeGossipReport(t *testing.T, metrics map[string]bench.Metric) string {
	t.Helper()
	r := &bench.Report{Experiment: "gossip", Metrics: metrics}
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_gossip.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatalf("write report: %v", err)
	}
	return path
}

func healthyGossipMetrics() map[string]bench.Metric {
	return map[string]bench.Metric{
		"gossip.1000.ratio":        {Unit: "x", Mean: 11.5},
		"gossip.1000.convergence":  {Unit: "ns", Mean: float64(2 * time.Second)},
		"gossip.10000.ratio":       {Unit: "x", Mean: 12.1},
		"gossip.10000.convergence": {Unit: "ns", Mean: float64(3 * time.Second)},
		"sweep.2.spread":           {Unit: "ns", Mean: float64(50 * time.Millisecond)},
		"sweep.16.spread":          {Unit: "ns", Mean: float64(120 * time.Millisecond)},
		"sweep.interval":           {Unit: "ns", Mean: float64(25 * time.Millisecond)},
	}
}

func TestGossipGatePasses(t *testing.T) {
	path := writeGossipReport(t, healthyGossipMetrics())
	var out strings.Builder
	if err := run([]string{"-gossip", path}, &out); err != nil {
		t.Fatalf("healthy report failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "gossip gate passed") {
		t.Errorf("unexpected output: %s", out.String())
	}
}

func TestGossipGateCatchesWeakRatio(t *testing.T) {
	metrics := healthyGossipMetrics()
	metrics["gossip.10000.ratio"] = bench.Metric{Unit: "x", Mean: 4}
	path := writeGossipReport(t, metrics)
	var out strings.Builder
	err := run([]string{"-gossip", path}, &out)
	if err == nil {
		t.Fatal("weak ratio passed the gate")
	}
	if !strings.Contains(out.String(), "GOSSIP GATE") {
		t.Errorf("finding not printed: %s", out.String())
	}
}

func TestGossipGateMissingReport(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gossip", filepath.Join(t.TempDir(), "nope.json")}, &out); err == nil {
		t.Fatal("missing report should fail")
	}
}
