package main

import (
	"context"
	"testing"
	"time"

	"whisper/internal/backend"
	"whisper/internal/bpeer"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/trace"
)

// startOverlay brings up a TCP rendezvous plus one b-peer for the
// peerctl commands to inspect.
func startOverlay(t *testing.T) (rdvAddr string, gid p2p.ID) {
	t.Helper()
	tr, err := simnet.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	gen := p2p.NewIDGen(1)
	rdv := p2p.NewPeer("rdv", gen.New(p2p.PeerIDKind), tr)
	tracer := trace.NewSeeded(trace.NewCollector(64), 1)
	rdv.SetTracer(tracer)
	p2p.ServeTraces(rdv, tracer.Collector())
	p2p.NewRendezvousService(rdv, 30*time.Second)
	p2p.NewDiscoveryService(rdv)
	rdv.Start()
	t.Cleanup(func() { _ = rdv.Close() })
	// Record a span so the trace command has something to index.
	tracer.StartRemote(trace.SpanContext{}, "test.root").End()

	btr, err := simnet.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("bpeer transport: %v", err)
	}
	gid = gen.New(p2p.GroupIDKind)
	records := backend.SeedStudents(3, 1)
	bp, err := bpeer.New(btr, bpeer.Config{
		Name:      "bp-1",
		Rank:      1,
		GroupID:   gid,
		GroupName: "StudentManagement",
		Signature: ontology.Signature{
			Action:  ontology.ConceptStudentInformation,
			Inputs:  []string{ontology.ConceptStudentID},
			Outputs: []string{ontology.ConceptStudentInfo},
		},
		QoS:            qos.Profile{Reliability: 0.9},
		RendezvousAddr: rdv.Addr(),
		Handler: bpeer.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			_ = records
			return []byte("<ok/>"), nil
		}),
	})
	if err != nil {
		t.Fatalf("bpeer: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := bp.Start(ctx); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() { _ = bp.Close() })

	// Wait for self-election so "coordinator" answers.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && bp.Coordinator() == "" {
		time.Sleep(10 * time.Millisecond)
	}
	return rdv.Addr(), gid
}

func TestPeerctlCommands(t *testing.T) {
	rdvAddr, gid := startOverlay(t)
	for _, cmd := range []string{"members", "advertisements", "coordinator", "trace"} {
		if err := run([]string{"-rendezvous", rdvAddr, "-group", string(gid), cmd}); err != nil {
			t.Errorf("peerctl %s: %v", cmd, err)
		}
	}
	// A span-tree dump of an unknown trace reports an error.
	if err := run([]string{"-rendezvous", rdvAddr, "-trace-id", "no-such-trace", "trace"}); err == nil {
		t.Error("unknown trace ID should fail")
	}
}

// startShard brings up one discovery shard (gossip service over a TCP
// peer) for the gossip/shards commands to inspect.
func startShard(t *testing.T) (addr string) {
	t.Helper()
	tr, err := simnet.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		t.Fatalf("shard transport: %v", err)
	}
	shard := p2p.NewPeer("shard-0", p2p.NewIDGen(7).New(p2p.PeerIDKind), tr)
	disco := p2p.NewDiscoveryService(shard)
	gsvc, err := p2p.NewGossipService(shard, p2p.GossipConfig{Disco: disco, Seed: 7})
	if err != nil {
		t.Fatalf("gossip service: %v", err)
	}
	shard.Start()
	gsvc.SetPeers([]string{shard.Addr()})
	gsvc.Run()
	t.Cleanup(func() {
		gsvc.Stop()
		_ = shard.Close()
	})
	return shard.Addr()
}

func TestPeerctlGossipCommands(t *testing.T) {
	rdvAddr, _ := startOverlay(t)
	shardAddr := startShard(t)
	if err := run([]string{"-rendezvous", rdvAddr, "-peer", shardAddr, "gossip"}); err != nil {
		t.Errorf("peerctl gossip: %v", err)
	}
	if err := run([]string{"-rendezvous", rdvAddr, "-shards", shardAddr, "shards"}); err != nil {
		t.Errorf("peerctl shards: %v", err)
	}
	// Every shard down: the table prints errors and the command fails.
	if err := run([]string{"-rendezvous", rdvAddr, "-shards", "127.0.0.1:1", "shards"}); err == nil {
		t.Error("shards with an unreachable fleet should fail")
	}
}

func TestPeerctlValidation(t *testing.T) {
	if err := run([]string{"members"}); err == nil {
		t.Error("missing -rendezvous should fail")
	}
	if err := run([]string{"-rendezvous", "127.0.0.1:1"}); err == nil {
		t.Error("missing command should fail")
	}
	if err := run([]string{"-rendezvous", "127.0.0.1:1", "nonsense"}); err == nil {
		t.Error("unknown command should fail")
	}
	for _, cmd := range []string{"breakers", "cache", "loadctl", "journal"} {
		if err := run([]string{"-rendezvous", "127.0.0.1:1", cmd}); err == nil {
			t.Errorf("%s without -peer should fail", cmd)
		}
	}
	if err := run([]string{"-rendezvous", "127.0.0.1:1", "shards"}); err == nil {
		t.Error("shards without -shards should fail")
	}
}
