// Command peerctl inspects a running Whisper overlay through its
// rendezvous peer: group membership, semantic advertisements, the
// current coordinator of a group, and recent distributed traces.
//
// Usage (flags must precede the command):
//
//	peerctl -rendezvous 127.0.0.1:7000 -group urn:jxta:group-uuid-studentmanagement members
//	peerctl -rendezvous 127.0.0.1:7000 advertisements
//	peerctl -rendezvous 127.0.0.1:7000 -group urn:... coordinator
//	peerctl -rendezvous 127.0.0.1:7000 trace
//	peerctl -rendezvous 127.0.0.1:7000 -trace-id t1a2b3c4-17 trace
//	peerctl -rendezvous 127.0.0.1:7000 -peer 127.0.0.1:7031 breakers
//	peerctl -rendezvous 127.0.0.1:7000 -peer 127.0.0.1:7031 cache
//	peerctl -rendezvous 127.0.0.1:7000 -peer 127.0.0.1:7031 loadctl
//	peerctl -rendezvous 127.0.0.1:7000 -peer 127.0.0.1:7021 journal
//	peerctl -rendezvous 127.0.0.1:7000 -group urn:... readindex
//	peerctl -rendezvous 127.0.0.1:7000 gossip
//	peerctl -rendezvous 127.0.0.1:7000 -shards 127.0.0.1:7000,127.0.0.1:7041 shards
//
// The breakers command asks a running SWS-proxy (its address via
// -peer) for the per-group circuit-breaker states and resilience
// counters, so a live run shows open/half-open transitions.
//
// The cache command asks a running SWS-proxy for its cache
// statistics: discovery index size and hit/miss/eviction counters,
// semantic match-cache counters, and cached binding counts.
//
// The loadctl command asks a running SWS-proxy for its admission
// pipeline: the AIMD concurrency limit, inflight and queued requests,
// the p95 service estimate, per-client token-bucket levels and the
// shed counters by rejection reason.
//
// The journal command asks a running b-peer replica (its address via
// -peer) for its replicated operation journal: sequence numbers,
// per-entry status, and the journal/snapshot counters behind the
// group's exactly-once guarantee.
//
// The readindex command asks every group member for its local
// committed sequence (the index follower reads barrier on) and prints
// each replica's lag behind the highest — a live view of how far each
// follower trails the coordinator's committed prefix.
//
// The trace command asks a peer (the rendezvous by default; any traced
// peer via -peer) for its recorded spans — the target must run with
// tracing enabled (whisperd -tracing). Without -trace-id it prints an
// index of the most recent traces; with it, the full span tree.
//
// The gossip command asks one discovery shard (via -peer; the
// rendezvous, which carries shard 0, by default) for its gossip engine
// and store counters as key=value lines: rumor rounds, reconciles,
// queue depth, entry/live counts and the convergence checksum.
//
// The shards command takes the shard fleet's addresses via -shards,
// prints each shard's entry counts, and maps every semantic
// advertisement found on the fleet to its replica owners on the
// consistent-hash ring — a live view of how the discovery index is
// partitioned.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/p2p"
	"whisper/internal/proxy"
	"whisper/internal/simnet"
	"whisper/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "peerctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("peerctl", flag.ContinueOnError)
	var (
		rendezvous = fs.String("rendezvous", "", "rendezvous peer address (required)")
		group      = fs.String("group", "urn:jxta:group-uuid-studentmanagement", "b-peer group URN")
		timeout    = fs.Duration("timeout", 3*time.Second, "query timeout")
		peerAddr   = fs.String("peer", "", "target peer address: traces default to the rendezvous; breakers require the SWS-proxy address")
		traceID    = fs.String("trace-id", "", "print this trace's full span tree instead of the index")
		last       = fs.Int("last", 10, "number of recent traces to index")
		shardList  = fs.String("shards", "", "comma-separated shard fleet addresses (required for the shards command)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rendezvous == "" {
		return errors.New("-rendezvous is required")
	}
	cmd := fs.Arg(0)
	if cmd == "" {
		return errors.New("command required: members|advertisements|coordinator|trace|breakers|cache|loadctl|journal|readindex|gossip|shards")
	}

	bpeer.EnsureAdvTypes()
	tr, err := simnet.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		return err
	}
	gen := p2p.NewIDGen(0)
	peer := p2p.NewPeer("peerctl", gen.New(p2p.PeerIDKind), tr)
	peer.Start()
	defer func() { _ = peer.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd {
	case "members":
		return showMembers(ctx, peer, *rendezvous, p2p.ID(*group))
	case "advertisements":
		return showAdvertisements(ctx, peer, *rendezvous)
	case "coordinator":
		return showCoordinator(ctx, peer, *rendezvous, p2p.ID(*group))
	case "trace":
		target := *peerAddr
		if target == "" {
			target = *rendezvous
		}
		return showTraces(ctx, peer, target, trace.ID(*traceID), *last)
	case "breakers":
		if *peerAddr == "" {
			return errors.New("-peer (the SWS-proxy address) is required for breakers")
		}
		return showBreakers(ctx, peer, *peerAddr)
	case "cache":
		if *peerAddr == "" {
			return errors.New("-peer (the SWS-proxy address) is required for cache")
		}
		return showCache(ctx, peer, *peerAddr)
	case "loadctl":
		if *peerAddr == "" {
			return errors.New("-peer (the SWS-proxy address) is required for loadctl")
		}
		return showLoadctl(ctx, peer, *peerAddr)
	case "journal":
		if *peerAddr == "" {
			return errors.New("-peer (a b-peer replica address) is required for journal")
		}
		return showJournal(ctx, peer, *peerAddr)
	case "readindex":
		return showReadIndex(ctx, peer, *rendezvous, p2p.ID(*group))
	case "gossip":
		target := *peerAddr
		if target == "" {
			target = *rendezvous
		}
		return showGossip(ctx, peer, target)
	case "shards":
		if *shardList == "" {
			return errors.New("-shards (the shard fleet's comma-separated addresses) is required for shards")
		}
		return showShards(ctx, peer, strings.Split(*shardList, ","))
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// showGossip dumps one shard's gossip counters verbatim (the shard
// serves them as sorted key=value lines).
func showGossip(ctx context.Context, peer *p2p.Peer, shardAddr string) error {
	stats, err := p2p.NewGossipClient(peer).Stats(ctx, shardAddr)
	if err != nil {
		return fmt.Errorf("gossip stats from %s (is it a discovery shard?): %w", shardAddr, err)
	}
	fmt.Print(stats)
	return nil
}

// showShards prints the shard fleet's per-shard counters and maps each
// semantic advertisement on the fleet to its replica owners on the
// consistent-hash ring.
func showShards(ctx context.Context, peer *p2p.Peer, addrs []string) error {
	for i := range addrs {
		addrs[i] = strings.TrimSpace(addrs[i])
	}
	client := p2p.NewGossipClient(peer)
	fmt.Printf("%-5s %-22s %-8s %-8s %-8s %s\n", "SHARD", "ADDR", "ENTRIES", "LIVE", "ROUNDS", "CHECKSUM")
	var up []string
	for i, addr := range addrs {
		stats, err := client.Stats(ctx, addr)
		if err != nil {
			fmt.Printf("%-5d %-22s %v\n", i, addr, err)
			continue
		}
		up = append(up, addr)
		kv := parseStatLines(stats)
		fmt.Printf("%-5d %-22s %-8s %-8s %-8s %s\n",
			i, addr, kv["entries"], kv["live"], kv["rounds"], kv["checksum"])
	}
	if len(up) == 0 {
		return errors.New("no shard answered")
	}

	router := p2p.NewShardRouter(addrs, 0)
	disco := p2p.NewDiscoveryService(peer)
	advs, err := disco.RemoteGetAdvertisements(ctx, up[:1], "", "", "", 0)
	if err != nil {
		return fmt.Errorf("advertisements from shard %s: %w", up[0], err)
	}
	fmt.Printf("\nring: %d shards, %d replica owners per slot\n", len(addrs), router.Replicas())
	fmt.Printf("%-30s %-34s %s\n", "NAME", "ACTION", "OWNERS")
	for _, adv := range advs {
		sem, ok := adv.(*bpeer.SemanticAdvertisement)
		if !ok {
			continue
		}
		owners := router.AppendOwners(nil, adv.AdvType(), "action", sem.Action)
		fmt.Printf("%-30s %-34s %s\n", sem.Name, sem.Action, strings.Join(owners, ","))
	}
	return nil
}

// parseStatLines splits "key=value\n" stats output into a map.
func parseStatLines(s string) map[string]string {
	kv := make(map[string]string)
	for _, line := range strings.Split(s, "\n") {
		if k, v, ok := strings.Cut(line, "="); ok {
			kv[k] = v
		}
	}
	return kv
}

func showCache(ctx context.Context, peer *p2p.Peer, proxyAddr string) error {
	report, err := proxy.QueryCache(ctx, peer, proxyAddr)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func showJournal(ctx context.Context, peer *p2p.Peer, bpeerAddr string) error {
	res := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	report, err := bpeer.QueryJournal(ctx, res, bpeerAddr)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func showLoadctl(ctx context.Context, peer *p2p.Peer, proxyAddr string) error {
	report, err := proxy.QueryLoadctl(ctx, peer, proxyAddr)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

// showReadIndex queries every group member's local committed sequence
// and prints the per-replica lag behind the highest index seen.
func showReadIndex(ctx context.Context, peer *p2p.Peer, rdvAddr string, gid p2p.ID) error {
	rdv := p2p.NewRendezvousClient(peer, rdvAddr)
	members, err := rdv.Members(ctx, gid)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		return errors.New("group has no members")
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Rank > members[j].Rank })
	res := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	type row struct {
		name, addr string
		idx        uint64
		err        error
	}
	rows := make([]row, 0, len(members))
	var highest uint64
	for _, m := range members {
		idx, err := bpeer.QueryReadIndex(ctx, res, m.Addr)
		rows = append(rows, row{name: m.Name, addr: m.Addr, idx: idx, err: err})
		if err == nil && idx > highest {
			highest = idx
		}
	}
	fmt.Printf("%-20s %-22s %-12s %s\n", "NAME", "ADDR", "READ-INDEX", "LAG")
	for _, r := range rows {
		if r.err != nil {
			fmt.Printf("%-20s %-22s %-12s %v\n", r.name, r.addr, "-", r.err)
			continue
		}
		fmt.Printf("%-20s %-22s %-12d %d\n", r.name, r.addr, r.idx, highest-r.idx)
	}
	return nil
}

func showBreakers(ctx context.Context, peer *p2p.Peer, proxyAddr string) error {
	report, err := proxy.QueryBreakers(ctx, peer, proxyAddr)
	if err != nil {
		return err
	}
	fmt.Print(report)
	return nil
}

func showMembers(ctx context.Context, peer *p2p.Peer, rdvAddr string, gid p2p.ID) error {
	rdv := p2p.NewRendezvousClient(peer, rdvAddr)
	members, err := rdv.Members(ctx, gid)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		fmt.Println("no members")
		return nil
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Rank > members[j].Rank })
	fmt.Printf("%-20s %-6s %-22s %s\n", "NAME", "RANK", "ADDR", "PID")
	for _, m := range members {
		fmt.Printf("%-20s %-6d %-22s %s\n", m.Name, m.Rank, m.Addr, m.PID)
	}
	return nil
}

func showAdvertisements(ctx context.Context, peer *p2p.Peer, rdvAddr string) error {
	disco := p2p.NewDiscoveryService(peer)
	advs, err := disco.RemoteGetAdvertisements(ctx, []string{rdvAddr}, "", "", "", 0)
	if err != nil {
		return err
	}
	if len(advs) == 0 {
		fmt.Println("no advertisements")
		return nil
	}
	for _, adv := range advs {
		fmt.Printf("%s %s\n", adv.AdvType(), adv.AdvID())
		if sem, ok := adv.(*bpeer.SemanticAdvertisement); ok {
			fmt.Printf("  name:    %s\n  action:  %s\n  inputs:  %v\n  outputs: %v\n  policy:  %s\n  qos:     latency=%.1fms reliability=%.3f availability=%.3f cost=%.2f\n",
				sem.Name, sem.Action, sem.Inputs, sem.Outputs, sem.EffectivePolicy(),
				sem.QoS.LatencyMillis, sem.QoS.Reliability, sem.QoS.Availability, sem.QoS.CostPerCall)
		}
	}
	return nil
}

// showTraces dumps the target peer's span collector: an index of the
// most recent traces, or one trace's full span tree with -trace-id.
func showTraces(ctx context.Context, peer *p2p.Peer, addr string, id trace.ID, last int) error {
	res := p2p.NewTraceClient(peer)
	recs, err := p2p.QueryTraces(ctx, res, addr)
	if err != nil {
		return fmt.Errorf("trace dump from %s (is it running with tracing enabled?): %w", addr, err)
	}
	if len(recs) == 0 {
		fmt.Println("no traces recorded")
		return nil
	}
	if id != "" {
		root, orphans := trace.BuildTree(recs, id)
		if root == nil {
			return fmt.Errorf("trace %s not found at %s", id, addr)
		}
		fmt.Print(root.Format())
		for _, o := range orphans {
			fmt.Println("(detached)")
			fmt.Print(o.Format())
		}
		return nil
	}

	type traceInfo struct {
		id    trace.ID
		start time.Time
		end   time.Time
		spans int
		root  string
	}
	byID := make(map[trace.ID]*traceInfo)
	var order []*traceInfo
	for _, r := range recs {
		ti := byID[r.TraceID]
		if ti == nil {
			ti = &traceInfo{id: r.TraceID, start: r.Start, end: r.End}
			byID[r.TraceID] = ti
			order = append(order, ti)
		}
		ti.spans++
		if r.Start.Before(ti.start) {
			ti.start = r.Start
		}
		if r.End.After(ti.end) {
			ti.end = r.End
		}
		if r.ParentID == "" {
			ti.root = r.Name
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i].start.After(order[j].start) })
	if last > 0 && len(order) > last {
		order = order[:last]
	}
	fmt.Printf("%-24s %-24s %-6s %-12s %s\n", "TRACE", "ROOT", "SPANS", "DURATION", "START")
	for _, ti := range order {
		fmt.Printf("%-24s %-24s %-6d %-12v %s\n",
			ti.id, ti.root, ti.spans, ti.end.Sub(ti.start).Round(time.Microsecond),
			ti.start.Format(time.RFC3339Nano))
	}
	fmt.Println("\nuse -trace-id <TRACE> to print a span tree")
	return nil
}

func showCoordinator(ctx context.Context, peer *p2p.Peer, rdvAddr string, gid p2p.ID) error {
	rdv := p2p.NewRendezvousClient(peer, rdvAddr)
	members, err := rdv.Members(ctx, gid)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		return errors.New("group has no members")
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Rank > members[j].Rank })
	res := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	var lastErr error
	for _, m := range members {
		coord, pipeID, err := bpeer.QueryCoordinator(ctx, res, m.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		fmt.Printf("coordinator: %s\n", coord)
		if pipeID != "" {
			fmt.Printf("service pipe: %s\n", pipeID)
		}
		return nil
	}
	return fmt.Errorf("no member answered: %w", lastErr)
}
