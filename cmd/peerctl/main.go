// Command peerctl inspects a running Whisper overlay through its
// rendezvous peer: group membership, semantic advertisements and the
// current coordinator of a group.
//
// Usage (flags must precede the command):
//
//	peerctl -rendezvous 127.0.0.1:7000 -group urn:jxta:group-uuid-studentmanagement members
//	peerctl -rendezvous 127.0.0.1:7000 advertisements
//	peerctl -rendezvous 127.0.0.1:7000 -group urn:... coordinator
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"whisper/internal/bpeer"
	"whisper/internal/p2p"
	"whisper/internal/simnet"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "peerctl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("peerctl", flag.ContinueOnError)
	var (
		rendezvous = fs.String("rendezvous", "", "rendezvous peer address (required)")
		group      = fs.String("group", "urn:jxta:group-uuid-studentmanagement", "b-peer group URN")
		timeout    = fs.Duration("timeout", 3*time.Second, "query timeout")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *rendezvous == "" {
		return errors.New("-rendezvous is required")
	}
	cmd := fs.Arg(0)
	if cmd == "" {
		return errors.New("command required: members|advertisements|coordinator")
	}

	bpeer.EnsureAdvTypes()
	tr, err := simnet.NewTCPTransport("127.0.0.1:0")
	if err != nil {
		return err
	}
	gen := p2p.NewIDGen(0)
	peer := p2p.NewPeer("peerctl", gen.New(p2p.PeerIDKind), tr)
	peer.Start()
	defer func() { _ = peer.Close() }()

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch cmd {
	case "members":
		return showMembers(ctx, peer, *rendezvous, p2p.ID(*group))
	case "advertisements":
		return showAdvertisements(ctx, peer, *rendezvous)
	case "coordinator":
		return showCoordinator(ctx, peer, *rendezvous, p2p.ID(*group))
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func showMembers(ctx context.Context, peer *p2p.Peer, rdvAddr string, gid p2p.ID) error {
	rdv := p2p.NewRendezvousClient(peer, rdvAddr)
	members, err := rdv.Members(ctx, gid)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		fmt.Println("no members")
		return nil
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Rank > members[j].Rank })
	fmt.Printf("%-20s %-6s %-22s %s\n", "NAME", "RANK", "ADDR", "PID")
	for _, m := range members {
		fmt.Printf("%-20s %-6d %-22s %s\n", m.Name, m.Rank, m.Addr, m.PID)
	}
	return nil
}

func showAdvertisements(ctx context.Context, peer *p2p.Peer, rdvAddr string) error {
	disco := p2p.NewDiscoveryService(peer)
	advs, err := disco.RemoteGetAdvertisements(ctx, []string{rdvAddr}, "", "", "", 0)
	if err != nil {
		return err
	}
	if len(advs) == 0 {
		fmt.Println("no advertisements")
		return nil
	}
	for _, adv := range advs {
		fmt.Printf("%s %s\n", adv.AdvType(), adv.AdvID())
		if sem, ok := adv.(*bpeer.SemanticAdvertisement); ok {
			fmt.Printf("  name:    %s\n  action:  %s\n  inputs:  %v\n  outputs: %v\n  policy:  %s\n  qos:     latency=%.1fms reliability=%.3f availability=%.3f cost=%.2f\n",
				sem.Name, sem.Action, sem.Inputs, sem.Outputs, sem.EffectivePolicy(),
				sem.QoS.LatencyMillis, sem.QoS.Reliability, sem.QoS.Availability, sem.QoS.CostPerCall)
		}
	}
	return nil
}

func showCoordinator(ctx context.Context, peer *p2p.Peer, rdvAddr string, gid p2p.ID) error {
	rdv := p2p.NewRendezvousClient(peer, rdvAddr)
	members, err := rdv.Members(ctx, gid)
	if err != nil {
		return err
	}
	if len(members) == 0 {
		return errors.New("group has no members")
	}
	sort.Slice(members, func(i, j int) bool { return members[i].Rank > members[j].Rank })
	res := p2p.NewResolverOn(peer, bpeer.ProtoBinding)
	var lastErr error
	for _, m := range members {
		coord, pipeID, err := bpeer.QueryCoordinator(ctx, res, m.Addr)
		if err != nil {
			lastErr = err
			continue
		}
		fmt.Printf("coordinator: %s\n", coord)
		if pipeID != "" {
			fmt.Printf("service pipe: %s\n", pipeID)
		}
		return nil
	}
	return fmt.Errorf("no member answered: %w", lastErr)
}
