// Command whisper-bench runs the Whisper experiment suite and prints
// the paper-style tables (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	whisper-bench                 # run every experiment
//	whisper-bench -exp figure4    # one experiment
//	whisper-bench -exp figure4 -peers 2,3,4,5,6,7,8,9 -window 2s
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"whisper/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "whisper-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("whisper-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: all|figure4|rtt|failover|throughput|discovery|discovery-live|backend|qos|availability|election|chaos")
		peers    = fs.String("peers", "", "comma-separated peer counts for sweeps (experiment-specific default)")
		window   = fs.Duration("window", 0, "measurement window for figure4/throughput")
		samples  = fs.Int("samples", 0, "sample count for rtt")
		requests = fs.Int("requests", 0, "request count for figure4/backend/qos")
		trials   = fs.Int("trials", 0, "trial count for failover/election")
		seed     = fs.Int64("seed", 1, "random seed")
		format   = fs.String("format", "table", "output format: table|csv")
		traced   = fs.Bool("trace", false, "for failover: record a distributed trace of the recovery request and print its span-tree breakdown")
		mtbf     = fs.Duration("mtbf", 0, "for chaos: mean time between failures per replica (default 2s)")
		mttr     = fs.Duration("mttr", 0, "for chaos: mean time to repair a crashed replica (default 500ms)")
		netChaos = fs.Bool("net-faults", false, "for chaos: also inject rolling partitions and link degradation (drops, duplication, corruption)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseCounts(*peers)
	if err != nil {
		return err
	}

	// traceReport holds the failover experiment's span-tree breakdown
	// when -trace is set; it is printed after the experiment's table.
	var traceReport string
	runners := map[string]func() (*bench.Table, error){
		"figure4": func() (*bench.Table, error) {
			t, _, err := bench.Figure4(bench.Figure4Options{
				PeerCounts: counts, Window: *window, Requests: *requests, Seed: *seed,
			})
			return t, err
		},
		"rtt": func() (*bench.Table, error) {
			t, _, err := bench.RTT(bench.RTTOptions{Samples: *samples, Seed: *seed})
			return t, err
		},
		"failover": func() (*bench.Table, error) {
			opts := bench.FailoverOptions{Trials: *trials, Seed: *seed, Trace: *traced}
			if len(counts) > 0 {
				opts.Peers = counts[0]
			}
			t, res, err := bench.Failover(opts)
			if err == nil && res.Trace != nil {
				traceReport = res.Trace.Report
			}
			return t, err
		},
		"throughput": func() (*bench.Table, error) {
			t, _, err := bench.Throughput(bench.ThroughputOptions{
				PeerCounts: counts, Duration: *window, Seed: *seed,
			})
			return t, err
		},
		"discovery": func() (*bench.Table, error) {
			return bench.DiscoveryQuality(bench.DiscoveryOptions{})
		},
		"discovery-live": func() (*bench.Table, error) {
			return bench.DiscoveryQualityLive(bench.DiscoveryOptions{})
		},
		"backend": func() (*bench.Table, error) {
			t, _, err := bench.BackendFailover(bench.BackendFailoverOptions{
				Requests: *requests, Seed: *seed,
			})
			return t, err
		},
		"qos": func() (*bench.Table, error) {
			t, _, err := bench.QoSSelection(bench.QoSOptions{Requests: *requests, Seed: *seed})
			return t, err
		},
		"availability": func() (*bench.Table, error) {
			t, _, err := bench.Availability(bench.AvailabilityOptions{Requests: *requests, Seed: *seed})
			return t, err
		},
		"election": func() (*bench.Table, error) {
			t, _, err := bench.ElectionCost(bench.ElectionOptions{
				GroupSizes: counts, Trials: *trials, Seed: *seed,
			})
			return t, err
		},
		"chaos": func() (*bench.Table, error) {
			t, _, err := bench.Chaos(bench.ChaosOptions{
				GroupSizes: counts, MTBF: *mtbf, MTTR: *mttr,
				Window: *window, NetFaults: *netChaos, Seed: *seed,
			})
			return t, err
		},
	}
	order := []string{"figure4", "rtt", "failover", "throughput", "discovery", "discovery-live", "backend", "qos", "availability", "election", "chaos"}

	selected := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q (want one of: all %s)", *exp, strings.Join(order, " "))
		}
		selected = []string{*exp}
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table|csv)", *format)
	}
	for _, name := range selected {
		start := time.Now()
		table, err := runners[name]()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		if *format == "csv" {
			fmt.Print(table.CSV())
			fmt.Println()
			continue
		}
		fmt.Println(table.String())
		if name == "failover" && traceReport != "" {
			fmt.Println(traceReport)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad peer count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
