// Command whisper-bench runs the Whisper experiment suite and prints
// the paper-style tables (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	whisper-bench                 # run every experiment
//	whisper-bench -exp figure4    # one experiment
//	whisper-bench -exp figure4 -peers 2,3,4,5,6,7,8,9 -window 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"whisper/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "whisper-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("whisper-bench", flag.ContinueOnError)
	var (
		exp      = fs.String("exp", "all", "experiment: all|figure4|rtt|failover|throughput|discovery|discovery-live|backend|qos|availability|election|chaos|exactlyonce|overload|followers|gossip")
		peers    = fs.String("peers", "", "comma-separated peer counts for sweeps (experiment-specific default)")
		window   = fs.Duration("window", 0, "measurement window for figure4/throughput")
		samples  = fs.Int("samples", 0, "sample count for rtt")
		requests = fs.Int("requests", 0, "request count for figure4/backend/qos")
		trials   = fs.Int("trials", 0, "trial count for failover/election")
		seed     = fs.Int64("seed", 1, "random seed")
		format   = fs.String("format", "table", "output format: table|csv")
		jsonDir  = fs.String("json", "", "also write machine-readable BENCH_<exp>.json files into this directory")
		traced   = fs.Bool("trace", false, "for failover: record a distributed trace of the recovery request and print its span-tree breakdown")
		mtbf     = fs.Duration("mtbf", 0, "for chaos: mean time between failures per replica (default 2s)")
		mttr     = fs.Duration("mttr", 0, "for chaos: mean time to repair a crashed replica (default 500ms)")
		netChaos = fs.Bool("net-faults", false, "for chaos: also inject rolling partitions and link degradation (drops, duplication, corruption)")
		baseRate = fs.Float64("base-rate", 0, "for overload: the 1x offered load in req/s (default: calibrate against measured capacity)")
		mults    = fs.String("multipliers", "", "for overload: comma-separated offered-load multipliers (default 1,5,10)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	counts, err := parseCounts(*peers)
	if err != nil {
		return err
	}

	// traceReport holds the failover experiment's span-tree breakdown
	// when -trace is set; it is printed after the experiment's table.
	// Each runner returns the printable table plus a machine-readable
	// report (written as BENCH_<exp>.json under -json).
	// The experiments inherit the process root context; individual
	// phases derive their own timeouts from it.
	ctx := context.Background()

	var traceReport string
	runners := map[string]func() (*bench.Table, *bench.Report, error){
		"figure4": func() (*bench.Table, *bench.Report, error) {
			t, _, err := bench.Figure4(ctx, bench.Figure4Options{
				PeerCounts: counts, Window: *window, Requests: *requests, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			return t, bench.NewReport("figure4", t), nil
		},
		"rtt": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.RTT(ctx, bench.RTTOptions{Samples: *samples, Seed: *seed})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("rtt", t)
			r.AddHistogram("transport", res.Transport)
			r.AddHistogram("invocation", res.Invocation)
			return t, r, nil
		},
		"failover": func() (*bench.Table, *bench.Report, error) {
			opts := bench.FailoverOptions{Trials: *trials, Seed: *seed, Trace: *traced}
			if len(counts) > 0 {
				opts.Peers = counts[0]
			}
			t, res, err := bench.Failover(ctx, opts)
			if err != nil {
				return nil, nil, err
			}
			if res.Trace != nil {
				traceReport = res.Trace.Report
			}
			r := bench.NewReport("failover", t)
			r.AddHistogram("steady_rtt", res.SteadyRTT)
			r.AddHistogram("detect_elect", res.DetectElect)
			r.AddHistogram("unavailability", res.Unavailability)
			r.AddScalar("worst_rtt", "ns", float64(res.WorstRTT))
			return t, r, nil
		},
		"throughput": func() (*bench.Table, *bench.Report, error) {
			t, points, err := bench.Throughput(ctx, bench.ThroughputOptions{
				PeerCounts: counts, Duration: *window, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("throughput", t)
			for _, p := range points {
				key := fmt.Sprintf("%s.%dpeers", p.Policy, p.Peers)
				r.AddScalar(key+".throughput", "req/s", p.Throughput)
				r.AddHistogram(key+".latency", p.Latency)
			}
			return t, r, nil
		},
		"discovery": func() (*bench.Table, *bench.Report, error) {
			t, err := bench.DiscoveryQuality(ctx, bench.DiscoveryOptions{})
			if err != nil {
				return nil, nil, err
			}
			return t, bench.NewReport("discovery", t), nil
		},
		"discovery-live": func() (*bench.Table, *bench.Report, error) {
			t, err := bench.DiscoveryQualityLive(ctx, bench.DiscoveryOptions{})
			if err != nil {
				return nil, nil, err
			}
			return t, bench.NewReport("discovery-live", t), nil
		},
		"backend": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.BackendFailover(ctx, bench.BackendFailoverOptions{
				Requests: *requests, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("backend", t)
			r.AddScalar("succeeded", "count", float64(res.Succeeded))
			r.AddScalar("failed", "count", float64(res.Failed))
			r.AddScalar("switch_time", "ns", float64(res.SwitchTime))
			return t, r, nil
		},
		"qos": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.QoSSelection(ctx, bench.QoSOptions{Requests: *requests, Seed: *seed})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("qos", t)
			for _, s := range res {
				r.AddHistogram(s.Strategy+".latency", s.Latency)
			}
			return t, r, nil
		},
		"availability": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.Availability(ctx, bench.AvailabilityOptions{Requests: *requests, Seed: *seed})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("availability", t)
			for _, s := range res {
				r.AddHistogram(s.Strategy+".latency", s.Latency)
				r.AddScalar(s.Strategy+".errors", "count", float64(s.Errors))
			}
			return t, r, nil
		},
		"election": func() (*bench.Table, *bench.Report, error) {
			t, points, err := bench.ElectionCost(ctx, bench.ElectionOptions{
				GroupSizes: counts, Trials: *trials, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("election", t)
			for _, p := range points {
				key := fmt.Sprintf("%dpeers", p.Peers)
				r.AddScalar(key+".avg_messages", "count", p.AvgMessages)
				r.AddScalar(key+".avg_converge", "ns", float64(p.AvgConverge))
			}
			return t, r, nil
		},
		"chaos": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.Chaos(ctx, bench.ChaosOptions{
				GroupSizes: counts, MTBF: *mtbf, MTTR: *mttr,
				Window: *window, NetFaults: *netChaos, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("chaos", t)
			for _, p := range res {
				key := fmt.Sprintf("%dpeers", p.Peers)
				r.AddHistogram(key+".latency", p.Latency)
				r.AddScalar(key+".measured_availability", "ratio", p.Measured)
				r.AddScalar(key+".predicted_availability", "ratio", p.Predicted)
				r.AddScalar(key+".crashes", "count", float64(p.Crashes))
			}
			return t, r, nil
		},
		"exactlyonce": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.ExactlyOnce(ctx, bench.ExactlyOnceOptions{
				MTBF: *mtbf, MTTR: *mttr, Window: *window, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("exactlyonce", t)
			for _, p := range res {
				r.AddHistogram(p.Strategy+".commit", p.Commit)
				r.AddScalar(p.Strategy+".ops", "count", float64(p.Ops))
				r.AddScalar(p.Strategy+".acked", "count", float64(p.Acked))
				r.AddScalar(p.Strategy+".executions", "count", float64(p.Executions))
				r.AddScalar(p.Strategy+".duplicates", "count", float64(len(p.Duplicates)))
				r.AddScalar(p.Strategy+".lost_acked", "count", float64(len(p.LostAcked)))
				r.AddScalar(p.Strategy+".crashes", "count", float64(p.Crashes))
			}
			return t, r, nil
		},
		"overload": func() (*bench.Table, *bench.Report, error) {
			multipliers, err := parseMultipliers(*mults)
			if err != nil {
				return nil, nil, err
			}
			t, res, err := bench.Overload(ctx, bench.OverloadOptions{
				BaseRate: *baseRate, Multipliers: multipliers, Window: *window, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("overload", t)
			r.AddScalar("base_rate", "req/s", res.BaseRate)
			if res.Capacity > 0 {
				r.AddScalar("capacity", "req/s", res.Capacity)
			}
			for _, p := range res.Points {
				key := fmt.Sprintf("%s.%gx", p.Config, p.Multiplier)
				r.AddScalar(key+".offered_rate", "req/s", p.Rate)
				r.AddScalar(key+".offered", "count", float64(p.Offered))
				r.AddScalar(key+".good", "count", float64(p.Good))
				r.AddScalar(key+".shed", "count", float64(p.Shed))
				r.AddScalar(key+".errors", "count", float64(p.Errors))
				r.AddScalar(key+".violations", "count", float64(p.Violations))
				r.AddScalar(key+".duplicates", "count", float64(p.Duplicates))
				r.AddScalar(key+".goodput", "req/s", p.Goodput)
				r.AddScalar(key+".shed_rate", "ratio", p.ShedRate)
				r.AddScalar(key+".p50", "ns", float64(p.P50))
				r.AddScalar(key+".p99", "ns", float64(p.P99))
				if p.Config == "protected" {
					r.AddScalar(key+".limit", "count", p.Limit)
				}
			}
			return t, r, nil
		},
		"followers": func() (*bench.Table, *bench.Report, error) {
			t, res, err := bench.Followers(ctx, bench.FollowersOptions{
				ReplicaCounts: counts, Window: *window, Seed: *seed,
			})
			if err != nil {
				return nil, nil, err
			}
			r := bench.NewReport("followers", t)
			addPoint := func(key string, p bench.FollowersPoint) {
				r.AddScalar(key+".goodput", "req/s", p.Goodput)
				r.AddScalar(key+".reads", "count", float64(p.Reads))
				r.AddScalar(key+".errors", "count", float64(p.Errors))
				r.AddScalar(key+".writes", "count", float64(p.Writes))
				r.AddScalar(key+".p50", "ns", float64(p.P50))
				r.AddScalar(key+".p99", "ns", float64(p.P99))
				r.AddScalar(key+".spread", "count", float64(p.Spread))
				r.AddScalar(key+".checked", "count", float64(p.Checked))
				r.AddScalar(key+".stale", "count", float64(p.Stale))
			}
			addPoint("coordinator", res.Baseline)
			for _, p := range res.Points {
				addPoint(fmt.Sprintf("followers.%d", p.Replicas), p)
			}
			r.AddScalar("scaling", "ratio", res.Scaling)
			return t, r, nil
		},
		"gossip": func() (*bench.Table, *bench.Report, error) {
			opts := bench.GossipOptions{PeerCounts: counts, Seed: *seed}
			if *requests > 0 {
				opts.AdCounts = []int{*requests}
			}
			t, res, err := bench.Gossip(ctx, opts)
			if err != nil {
				return nil, nil, err
			}
			return t, bench.GossipReport(t, res), nil
		},
	}
	order := []string{"figure4", "rtt", "failover", "throughput", "discovery", "discovery-live", "backend", "qos", "availability", "election", "chaos", "exactlyonce", "overload", "followers", "gossip"}

	selected := order
	if *exp != "all" {
		if _, ok := runners[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q (want one of: all %s)", *exp, strings.Join(order, " "))
		}
		selected = []string{*exp}
	}
	if *format != "table" && *format != "csv" {
		return fmt.Errorf("unknown format %q (want table|csv)", *format)
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			return fmt.Errorf("json dir: %w", err)
		}
	}
	for _, name := range selected {
		start := time.Now()
		table, report, err := runners[name]()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", name, err)
		}
		if *jsonDir != "" {
			path, err := report.WriteFile(*jsonDir)
			if err != nil {
				return fmt.Errorf("experiment %s: %w", name, err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		if *format == "csv" {
			fmt.Print(table.CSV())
			fmt.Println()
			continue
		}
		fmt.Println(table.String())
		if name == "failover" && traceReport != "" {
			fmt.Println(traceReport)
		}
		fmt.Printf("(%s completed in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

func parseMultipliers(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		f, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || f <= 0 {
			return nil, fmt.Errorf("bad multiplier %q", p)
		}
		out = append(out, f)
	}
	return out, nil
}

func parseCounts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad peer count %q", p)
		}
		out = append(out, n)
	}
	return out, nil
}
