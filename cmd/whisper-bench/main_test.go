package main

import "testing"

func TestParseCounts(t *testing.T) {
	tests := []struct {
		in      string
		want    []int
		wantErr bool
	}{
		{"", nil, false},
		{"3", []int{3}, false},
		{"2,4,8", []int{2, 4, 8}, false},
		{" 2 , 4 ", []int{2, 4}, false},
		{"x", nil, true},
		{"0", nil, true},
		{"-1", nil, true},
		{"2,,3", nil, true},
	}
	for _, tt := range tests {
		got, err := parseCounts(tt.in)
		if tt.wantErr {
			if err == nil {
				t.Errorf("parseCounts(%q): expected error", tt.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseCounts(%q): %v", tt.in, err)
			continue
		}
		if len(got) != len(tt.want) {
			t.Errorf("parseCounts(%q) = %v, want %v", tt.in, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("parseCounts(%q) = %v, want %v", tt.in, got, tt.want)
			}
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-exp", "nonsense"}); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestRunSingleFastExperiment(t *testing.T) {
	if err := run([]string{"-exp", "discovery"}); err != nil {
		t.Errorf("discovery experiment: %v", err)
	}
}

func TestRunCSVFormat(t *testing.T) {
	if err := run([]string{"-exp", "discovery", "-format", "csv"}); err != nil {
		t.Errorf("csv run: %v", err)
	}
	if err := run([]string{"-exp", "discovery", "-format", "yaml"}); err == nil {
		t.Error("expected error for unknown format")
	}
}
