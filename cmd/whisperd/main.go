// Command whisperd runs Whisper components over real TCP sockets. A
// deployment can live in one process (-role all) or be spread across
// machines/processes, exactly like the paper's 9-machine testbed:
//
//	# terminal 1: the rendezvous peer
//	whisperd -role rendezvous -listen 127.0.0.1:7000
//
//	# terminals 2..n: replicated b-peers (ranks must be unique)
//	whisperd -role bpeer -rendezvous 127.0.0.1:7000 -rank 1 -backend db
//	whisperd -role bpeer -rendezvous 127.0.0.1:7000 -rank 2 -backend warehouse
//
//	# terminal n+1: the semantic Web service (SOAP over HTTP)
//	whisperd -role service -rendezvous 127.0.0.1:7000 -http :8080
//
//	# invoke it
//	curl -s -X POST --data '<soap:Envelope ...>' http://localhost:8080/
//
// With -role all, whisperd starts a rendezvous, N b-peers and the
// service in one process and serves SOAP on -http.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"whisper/internal/backend"
	"whisper/internal/bpeer"
	"whisper/internal/core"
	"whisper/internal/loadctl"
	"whisper/internal/ontology"
	"whisper/internal/p2p"
	"whisper/internal/proxy"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/soap"
	"whisper/internal/trace"
	"whisper/internal/wsdl"
)

// defaultGroupID is the shared StudentManagement group URN; every
// b-peer of the same logical group must use the same -group value.
const defaultGroupID = "urn:jxta:group-uuid-studentmanagement"

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "whisperd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("whisperd", flag.ContinueOnError)
	var (
		role       = fs.String("role", "all", "role: all|rendezvous|bpeer|service")
		listen     = fs.String("listen", "127.0.0.1:0", "TCP listen address for this peer")
		rendezvous = fs.String("rendezvous", "", "rendezvous peer address (bpeer/service roles)")
		httpAddr   = fs.String("http", ":8080", "HTTP listen address for the SOAP endpoint (service/all roles)")
		rank       = fs.Int64("rank", 1, "bully rank of this b-peer (unique per group)")
		group      = fs.String("group", defaultGroupID, "b-peer group URN")
		backendSel = fs.String("backend", "db", "backend for bpeer role: db|warehouse")
		loadShare  = fs.Bool("loadsharing", false, "serve from every replica (load-sharing policy) instead of the coordinator only")
		replicas   = fs.Int("replicas", 3, "replica count for -role all")
		students   = fs.Int("students", 100, "students in the seeded dataset")
		seed       = fs.Int64("seed", 1, "dataset seed")
		tracing    = fs.Bool("tracing", false, "record distributed traces; 'peerctl trace' dumps them from this process's peers")
		admit      = fs.Bool("admit", false, "enable the SWS-proxy admission pipeline (token bucket, deadline check, AIMD concurrency limit); 'peerctl loadctl' inspects it live")
		admitRate  = fs.Float64("admit-rate", 0, "admission: per-client token-bucket refill in req/s (0 = no per-client rate limit)")
		admitBurst = fs.Float64("admit-burst", 0, "admission: per-client token-bucket burst (default: the refill rate)")
		admitLimit = fs.Float64("admit-limit", 0, "admission: initial AIMD concurrency limit (default 4)")
		admitQueue = fs.Int("admit-queue", 0, "admission: deadline-ordered wait-queue capacity (default 64, negative disables queueing)")
		shards     = fs.Int("shards", 0, "discovery shards for -role all (0 = unsharded rendezvous index); advertisements spread over the shard fleet via gossip")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var adm *loadctl.Controller
	if *admit {
		adm = loadctl.NewController(loadctl.Config{
			Rate:         *admitRate,
			Burst:        *admitBurst,
			InitialLimit: *admitLimit,
			MaxQueue:     *admitQueue,
		})
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	tracer := newProcessTracer(*tracing)
	switch *role {
	case "all":
		return runAll(ctx, *httpAddr, *replicas, *students, *shards, *seed, *tracing, adm)
	case "rendezvous":
		return runRendezvous(ctx, *listen, tracer)
	case "bpeer":
		return runBPeer(ctx, *listen, *rendezvous, *group, *rank, *backendSel, *students, *seed, *loadShare, tracer)
	case "service":
		return runService(ctx, *listen, *rendezvous, *httpAddr, tracer, adm)
	default:
		return fmt.Errorf("unknown role %q", *role)
	}
}

// newProcessTracer builds this process's tracer (nil when tracing is
// off; a nil tracer is a valid no-op). Every peer started in the
// process shares its collector and serves remote trace dumps.
func newProcessTracer(enabled bool) *trace.Tracer {
	if !enabled {
		return nil
	}
	return trace.New(trace.NewCollector(trace.DefaultCapacity))
}

func runAll(ctx context.Context, httpAddr string, replicas, students, shards int, seed int64, tracing bool, adm *loadctl.Controller) error {
	dep, err := core.NewDeployment(core.Config{
		Transport: core.TCPTransport("127.0.0.1:0"),
		Seed:      seed,
		Tracing:   tracing,
		Shards:    shards,
	})
	if err != nil {
		return err
	}
	defer func() { _ = dep.Close() }()
	if shards > 0 {
		log.Printf("whisperd: discovery sharded over %d gossip shards (peerctl -shards %s shards)",
			shards, strings.Join(dep.ShardAddrs(), ","))
	}

	records := backend.SeedStudents(students, seed)
	specs := make([]core.ReplicaSpec, replicas)
	for i := range specs {
		var store backend.StudentStore
		if i%2 == 0 {
			store = backend.NewOperationalDB(records, 0)
		} else {
			store = backend.NewDataWarehouse(records, 0)
		}
		specs[i] = core.ReplicaSpec{Handler: studentHandler(store)}
	}
	deployCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if _, derr := dep.DeployGroup(deployCtx, core.GroupSpec{
		Name:      "StudentManagement",
		Signature: studentSignature(),
		QoS:       qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		Replicas:  specs,
	}); derr != nil {
		return fmt.Errorf("deploy group: %w", derr)
	}
	svc, err := dep.DeployService(wsdl.StudentManagement(), core.ServiceOptions{Admission: adm})
	if err != nil {
		return fmt.Errorf("deploy service: %w", err)
	}
	log.Printf("whisperd: %d b-peers behind StudentManagement, SOAP on %s", replicas, httpAddr)
	return serveHTTP(ctx, httpAddr, svc.Handler())
}

func runRendezvous(ctx context.Context, listen string, tracer *trace.Tracer) error {
	peer, err := startRendezvous(listen, tracer)
	if err != nil {
		return err
	}
	defer func() { _ = peer.Close() }()
	log.Printf("whisperd: rendezvous listening on %s", peer.Addr())
	<-ctx.Done()
	return nil
}

// startRendezvous brings a rendezvous peer online over TCP and
// returns it (tests use the returned address directly).
func startRendezvous(listen string, tracer *trace.Tracer) (*p2p.Peer, error) {
	// The rendezvous caches and re-serves b-peer semantic
	// advertisements, so it must know their XML type even though it
	// never constructs one itself (in its own OS process nothing else
	// registers them).
	bpeer.EnsureAdvTypes()
	tr, err := simnet.NewTCPTransport(listen)
	if err != nil {
		return nil, err
	}
	gen := p2p.NewIDGen(0)
	peer := p2p.NewPeer("rendezvous", gen.New(p2p.PeerIDKind), tr)
	peer.SetTracer(tracer)
	if col := tracer.Collector(); col != nil {
		p2p.ServeTraces(peer, col)
	}
	p2p.NewRendezvousService(peer, 30*time.Second)
	p2p.NewDiscoveryService(peer)
	peer.Start()
	return peer, nil
}

func runBPeer(ctx context.Context, listen, rendezvous, group string, rank int64, backendSel string, students int, seed int64, loadSharing bool, tracer *trace.Tracer) error {
	if rendezvous == "" {
		return errors.New("-role bpeer requires -rendezvous")
	}
	records := backend.SeedStudents(students, seed)
	var store backend.StudentStore
	switch backendSel {
	case "db":
		store = backend.NewOperationalDB(records, 0)
	case "warehouse":
		store = backend.NewDataWarehouse(records, 0)
	default:
		return fmt.Errorf("unknown backend %q (want db|warehouse)", backendSel)
	}
	bp, err := startBPeer(ctx, listen, rendezvous, group, rank, store, loadSharing, tracer)
	if err != nil {
		return err
	}
	defer func() { _ = bp.Close() }()
	log.Printf("whisperd: b-peer rank %d (%s backend) on %s, rendezvous %s",
		rank, store.Name(), bp.Addr(), rendezvous)
	<-ctx.Done()
	return nil
}

func runService(ctx context.Context, listen, rendezvous, httpAddr string, tracer *trace.Tracer, adm *loadctl.Controller) error {
	if rendezvous == "" {
		return errors.New("-role service requires -rendezvous")
	}
	srv, p, err := startService(listen, rendezvous, tracer, adm)
	if err != nil {
		return err
	}
	defer func() { _ = p.Close() }()
	log.Printf("whisperd: semantic Web service on %s (P2P peer %s, rendezvous %s)",
		httpAddr, p.Addr(), rendezvous)
	return serveHTTP(ctx, httpAddr, srv)
}

// startBPeer brings one b-peer replica online over TCP.
func startBPeer(ctx context.Context, listen, rendezvous, group string, rank int64, store backend.StudentStore, loadSharing bool, tracer *trace.Tracer) (*bpeer.BPeer, error) {
	tr, err := simnet.NewTCPTransport(listen)
	if err != nil {
		return nil, err
	}
	bp, err := bpeer.New(tr, bpeer.Config{
		Name:           fmt.Sprintf("bpeer-%d", rank),
		Rank:           rank,
		GroupID:        p2p.ID(group),
		GroupName:      "StudentManagement",
		Signature:      studentSignature(),
		QoS:            qos.Profile{LatencyMillis: 5, Reliability: 0.99, Availability: 0.99},
		RendezvousAddr: rendezvous,
		Handler:        studentHandler(store),
		LoadSharing:    loadSharing,
		FailStop:       func(err error) bool { return errors.Is(err, backend.ErrUnavailable) },
		Tracer:         tracer,
	})
	if err != nil {
		return nil, err
	}
	startCtx, cancel := context.WithTimeout(ctx, 15*time.Second)
	defer cancel()
	if err := bp.Start(startCtx); err != nil {
		return nil, err
	}
	return bp, nil
}

// startService builds the SOAP front end bound to an SWS-proxy,
// optionally behind an admission pipeline.
func startService(listen, rendezvous string, tracer *trace.Tracer, adm *loadctl.Controller) (*soap.Server, *proxy.SWSProxy, error) {
	tr, err := simnet.NewTCPTransport(listen)
	if err != nil {
		return nil, nil, err
	}
	reasoner := ontology.NewReasoner(ontology.Combined())
	p, err := proxy.New(tr, proxy.Config{
		Name:           "sws-proxy",
		RendezvousAddr: rendezvous,
		Reasoner:       reasoner,
		Tracer:         tracer,
		Admission:      adm,
	})
	if err != nil {
		return nil, nil, err
	}
	p.Start()

	defs := wsdl.StudentManagement()
	sig, err := defs.Signature("StudentInformation")
	if err != nil {
		_ = p.Close()
		return nil, nil, err
	}
	srv := soap.NewServer()
	srv.SetTracer(tracer)
	srv.Register("StudentInformation", func(ctx context.Context, bodyXML []byte) (any, error) {
		out, err := p.Invoke(ctx, sig, "StudentInformation", bodyXML)
		if err != nil {
			return nil, soap.ServerFault(err)
		}
		return out, nil
	})
	return srv, p, nil
}

func studentSignature() ontology.Signature {
	return ontology.Signature{
		Action:  ontology.ConceptStudentInformation,
		Inputs:  []string{ontology.ConceptStudentID},
		Outputs: []string{ontology.ConceptStudentInfo},
	}
}

func studentHandler(store backend.StudentStore) bpeer.Handler {
	return bpeer.HandlerFunc(func(_ context.Context, _ string, payload []byte) ([]byte, error) {
		id, err := extractStudentID(payload)
		if err != nil {
			return nil, err
		}
		rec, err := store.Student(id)
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf(
			"<StudentInfo><ID>%s</ID><Name>%s</Name><Program>%s</Program><Year>%d</Year><Email>%s</Email><Source>%s</Source></StudentInfo>",
			rec.ID, rec.Name, rec.Program, rec.Year, rec.Email, rec.Source)), nil
	})
}

func extractStudentID(payload []byte) (string, error) {
	var req struct {
		StudentID string `xml:"StudentID"`
	}
	if err := xmlUnmarshal(payload, &req); err != nil {
		return "", fmt.Errorf("bad request: %w", err)
	}
	if req.StudentID == "" {
		return "", errors.New("missing StudentID")
	}
	return req.StudentID, nil
}

func serveHTTP(ctx context.Context, addr string, handler http.Handler) error {
	srv := &http.Server{Addr: addr, Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		return srv.Shutdown(shutdownCtx)
	}
}
