package main

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"whisper/internal/backend"
	"whisper/internal/loadctl"
	"whisper/internal/soap"
	"whisper/internal/trace"
)

func TestExtractStudentID(t *testing.T) {
	id, err := extractStudentID([]byte("<StudentInformation><StudentID>S7</StudentID></StudentInformation>"))
	if err != nil || id != "S7" {
		t.Errorf("id = %q, %v", id, err)
	}
	if _, err := extractStudentID([]byte("<StudentInformation/>")); err == nil {
		t.Error("expected error for missing StudentID")
	}
	if _, err := extractStudentID([]byte("not xml")); err == nil {
		t.Error("expected error for malformed XML")
	}
}

func TestRunRejectsUnknownRoleAndBackend(t *testing.T) {
	if err := run([]string{"-role", "nope"}); err == nil {
		t.Error("expected error for unknown role")
	}
	if err := run([]string{"-role", "bpeer", "-rendezvous", "x", "-backend", "nope"}); err == nil {
		t.Error("expected error for unknown backend")
	}
	if err := run([]string{"-role", "bpeer"}); err == nil {
		t.Error("bpeer without rendezvous should fail")
	}
	if err := run([]string{"-role", "service"}); err == nil {
		t.Error("service without rendezvous should fail")
	}
}

// TestMultiProcessTopologyOverTCP wires the whisperd roles exactly as
// separate processes would — rendezvous, two b-peers, SOAP service —
// all over real TCP sockets, and drives a SOAP request through.
func TestMultiProcessTopologyOverTCP(t *testing.T) {
	rdv, err := startRendezvous("127.0.0.1:0", nil)
	if err != nil {
		t.Fatalf("rendezvous: %v", err)
	}
	t.Cleanup(func() { _ = rdv.Close() })

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	records := backend.SeedStudents(10, 1)
	group := "urn:jxta:group-uuid-test"
	bp1, err := startBPeer(ctx, "127.0.0.1:0", rdv.Addr(), group, 1,
		backend.NewDataWarehouse(records, 0), false, nil)
	if err != nil {
		t.Fatalf("bpeer 1: %v", err)
	}
	t.Cleanup(func() { _ = bp1.Close() })
	bp2, err := startBPeer(ctx, "127.0.0.1:0", rdv.Addr(), group, 2,
		backend.NewOperationalDB(records, 0), false, nil)
	if err != nil {
		t.Fatalf("bpeer 2: %v", err)
	}
	t.Cleanup(func() { _ = bp2.Close() })

	tracer := newProcessTracer(true)
	// Admission enabled as `whisperd -admit` would: the pipeline must be
	// transparent at this load (a single sequential request).
	adm := loadctl.NewController(loadctl.Config{})
	srv, prx, err := startService("127.0.0.1:0", rdv.Addr(), tracer, adm)
	if err != nil {
		t.Fatalf("service: %v", err)
	}
	t.Cleanup(func() { _ = prx.Close() })

	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	client := soap.NewClient(ts.URL)

	// The group needs a coordinator before requests flow.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if bp1.Coordinator() != "" && bp1.Coordinator() == bp2.Coordinator() {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	env, err := client.CallRaw(ctx, "StudentInformation",
		[]byte("<StudentInformation><StudentID>S0003</StudentID></StudentInformation>"))
	if err != nil {
		t.Fatalf("soap call: %v", err)
	}
	if env.Fault != nil {
		t.Fatalf("fault: %v", env.Fault)
	}
	if !strings.Contains(string(env.BodyXML), "<ID>S0003</ID>") {
		t.Errorf("body = %q", env.BodyXML)
	}
	// Rank 2 (the operational DB peer) should be serving.
	if !strings.Contains(string(env.BodyXML), "operational-db") {
		t.Errorf("expected the DB coordinator to answer: %q", env.BodyXML)
	}
	if s := adm.Snapshot(); s.Admitted < 1 || s.ShedTotal() != 0 {
		t.Errorf("admission pipeline: admitted=%d sheds=%d, want >=1 and 0", s.Admitted, s.ShedTotal())
	}

	// The traced service process recorded the SOAP operation and the
	// proxy's phase spans, all in one trace.
	recs := tracer.Collector().Snapshot()
	names := make(map[string]trace.ID)
	for _, r := range recs {
		names[r.Name] = r.TraceID
	}
	for _, want := range []string{"soap.StudentInformation", "proxy.invoke", "discovery", "bind", "call"} {
		if _, ok := names[want]; !ok {
			t.Errorf("service trace missing span %q (got %v)", want, names)
		}
	}
	if names["proxy.invoke"] != names["soap.StudentInformation"] {
		t.Errorf("soap and proxy spans are in different traces: %v", names)
	}
}
