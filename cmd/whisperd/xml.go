package main

import "encoding/xml"

// xmlUnmarshal is a thin indirection so the handler code reads at the
// same altitude as the rest of main.
func xmlUnmarshal(data []byte, v any) error { return xml.Unmarshal(data, v) }
