// Package whisper is the public API of the Whisper library, a
// from-scratch Go reproduction of the fault-tolerant semantic Web
// service architecture of Cardoso, "Benchmarking a Semantic Web
// Service Architecture for Fault-tolerant B2B Integration"
// (IWDDS/ICDCS 2006).
//
// Whisper fronts SOAP Web services (described in WSDL-S) with
// SWS-proxies that discover semantically matching groups of replicated
// "b-peers" on a JXTA-like P2P overlay. B-peer groups run the Bully
// election algorithm; when the elected coordinator fails, a
// semantically equivalent replica takes over and the proxy re-binds
// transparently, masking the failure from clients.
//
// The typical flow:
//
//	net := whisper.NewSimulatedLAN(1)
//	defer net.Close()
//	dep, _ := whisper.NewDeployment(whisper.Config{
//	    Transport: whisper.SimulatedTransport(net),
//	})
//	defer dep.Close()
//	dep.DeployGroup(ctx, whisper.GroupSpec{...})   // replicated backends
//	svc, _ := dep.DeployService(whisper.StudentManagementWSDL(), whisper.ServiceOptions{})
//	out, _ := svc.Invoke(ctx, "StudentInformation", body)
//
// Use whisper.TCPTransport("127.0.0.1:0") instead of the simulated LAN
// to run every peer over real TCP sockets.
package whisper

import (
	"whisper/internal/bpeer"
	"whisper/internal/core"
	"whisper/internal/ontology"
	"whisper/internal/qos"
	"whisper/internal/simnet"
	"whisper/internal/soap"
	"whisper/internal/workflow"
	"whisper/internal/wsdl"
)

// Deployment orchestration (see internal/core).
type (
	// Deployment is one Whisper installation: rendezvous, groups,
	// services.
	Deployment = core.Deployment
	// Config assembles a Deployment.
	Config = core.Config
	// Timings bundles protocol timeouts.
	Timings = core.Timings
	// GroupSpec describes a b-peer group to deploy.
	GroupSpec = core.GroupSpec
	// ReplicaSpec describes one replica in a group.
	ReplicaSpec = core.ReplicaSpec
	// Group is a deployed b-peer group.
	Group = core.Group
	// Service is a deployed semantic Web service.
	Service = core.Service
	// ServiceOptions tunes a deployed service.
	ServiceOptions = core.ServiceOptions
	// ProxyOptions tunes a standalone SWS-proxy.
	ProxyOptions = core.ProxyOptions
	// TransportFactory opens transport endpoints for components.
	TransportFactory = core.TransportFactory
)

// Service implementation plumbing (see internal/bpeer and internal/qos).
type (
	// Handler executes service requests at a b-peer.
	Handler = bpeer.Handler
	// HandlerFunc adapts a function to Handler.
	HandlerFunc = bpeer.HandlerFunc
	// QoSProfile is a peer's advertised quality profile.
	QoSProfile = qos.Profile
)

// Semantics (see internal/ontology and internal/wsdl).
type (
	// Ontology is an OWL-subset ontology.
	Ontology = ontology.Ontology
	// Reasoner answers subsumption and matching queries.
	Reasoner = ontology.Reasoner
	// Signature is a service's semantic signature.
	Signature = ontology.Signature
	// MatchDegree grades semantic matches.
	MatchDegree = ontology.MatchDegree
	// WSDL is a parsed WSDL-S document.
	WSDL = wsdl.Definitions
	// WSDLInterface is a WSDL interface (portType).
	WSDLInterface = wsdl.Interface
	// WSDLOperation is one WSDL-S annotated operation.
	WSDLOperation = wsdl.Operation
	// WSDLMessageRef references a semantically annotated message
	// element.
	WSDLMessageRef = wsdl.MessageRef
)

// Networking (see internal/simnet).
type (
	// Network is the in-process simulated LAN.
	Network = simnet.Network
	// SOAPClient invokes SOAP services over HTTP.
	SOAPClient = soap.Client
)

// Web-process composition (see internal/workflow; paper refs [10,11]).
type (
	// Process is a composable process-tree node.
	Process = workflow.Node
	// ProcessActivity is one service invocation in a process.
	ProcessActivity = workflow.Activity
	// ProcessSequence executes children in order, piping data.
	ProcessSequence = workflow.Sequence
	// ProcessParallel executes branches concurrently.
	ProcessParallel = workflow.Parallel
	// ProcessEngine executes process trees.
	ProcessEngine = workflow.Engine
)

// NewProcessEngine creates a Web-process execution engine.
func NewProcessEngine() *ProcessEngine { return workflow.NewEngine() }

// EstimateProcessQoS aggregates a process's QoS with Cardoso's
// stepwise reduction (sequence: additive time/cost, multiplicative
// reliability; parallel: slowest-branch time).
func EstimateProcessQoS(p Process) QoSProfile { return workflow.EstimateQoS(p) }

// ValidateProcess checks a process tree for structural errors.
func ValidateProcess(p Process) error { return workflow.Validate(p) }

// Match degrees, strongest first.
const (
	MatchExact        = ontology.MatchExact
	MatchPlugin       = ontology.MatchPlugin
	MatchSubsume      = ontology.MatchSubsume
	MatchIntersection = ontology.MatchIntersection
	MatchFail         = ontology.MatchFail
)

// NewDeployment starts a Whisper deployment (rendezvous online).
func NewDeployment(cfg Config) (*Deployment, error) { return core.NewDeployment(cfg) }

// SimulatedTransport returns a transport factory over a simulated
// network.
func SimulatedTransport(net *Network) TransportFactory { return core.SimulatedTransport(net) }

// TCPTransport returns a transport factory over real loopback TCP.
func TCPTransport(listenHost string) TransportFactory { return core.TCPTransport(listenHost) }

// NewSimulatedLAN builds a simulated network calibrated to the paper's
// 100 Mbit/s LAN testbed (~0.5 ms message RTT), seeded for
// reproducibility.
func NewSimulatedLAN(seed int64) *Network {
	return simnet.NewNetwork(
		simnet.WithLatency(simnet.NewLANModel(seed)),
		simnet.WithSeed(seed),
	)
}

// NewReasoner compiles an ontology for matching queries.
func NewReasoner(o *Ontology) *Reasoner { return ontology.NewReasoner(o) }

// NewOntology creates an empty ontology with the given base URI.
func NewOntology(baseURI string) *Ontology { return ontology.New(baseURI) }

// UniversityOntology builds the paper's student-management ontology.
func UniversityOntology() *Ontology { return ontology.University() }

// B2BOntology builds the insurance/banking/healthcare ontology from
// the paper's motivating applications.
func B2BOntology() *Ontology { return ontology.B2B() }

// CombinedOntology merges the University and B2B ontologies.
func CombinedOntology() *Ontology { return ontology.Combined() }

// ParseWSDL parses a WSDL-S document.
func ParseWSDL(data []byte) (*WSDL, error) { return wsdl.ParseBytes(data) }

// NewWSDL creates an empty WSDL-S document for programmatic
// construction.
func NewWSDL(name, targetNamespace string) *WSDL { return wsdl.New(name, targetNamespace) }

// StudentManagementWSDL builds the paper's §3.1 running-example
// service description.
func StudentManagementWSDL() *WSDL { return wsdl.StudentManagement() }

// NewSOAPClient creates a SOAP 1.1 client for the endpoint URL.
func NewSOAPClient(endpoint string) *SOAPClient { return soap.NewClient(endpoint) }
