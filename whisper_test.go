package whisper_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"whisper"
)

// TestPublicAPIQuickstart exercises the library exactly the way the
// README's quickstart does, entirely through the public package.
func TestPublicAPIQuickstart(t *testing.T) {
	net := whisper.NewSimulatedLAN(1)
	t.Cleanup(func() { _ = net.Close() })
	dep, err := whisper.NewDeployment(whisper.Config{
		Transport: whisper.SimulatedTransport(net),
		Seed:      1,
		Timings: whisper.Timings{
			HeartbeatInterval: 20 * time.Millisecond,
			HeartbeatTimeout:  80 * time.Millisecond,
			ElectionTimeout:   40 * time.Millisecond,
			LeaseInterval:     200 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	t.Cleanup(func() { _ = dep.Close() })

	o := whisper.UniversityOntology()
	sig := whisper.Signature{
		Action:  o.Term("StudentInformation"),
		Inputs:  []string{o.Term("StudentID")},
		Outputs: []string{o.Term("StudentInfo")},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	group, err := dep.DeployGroup(ctx, whisper.GroupSpec{
		Name:      "StudentManagement",
		Signature: sig,
		QoS:       whisper.QoSProfile{Reliability: 0.99},
		Handler: whisper.HandlerFunc(func(_ context.Context, _ string, _ []byte) ([]byte, error) {
			return []byte("<StudentInfo><ID>S1</ID><Name>Maria</Name></StudentInfo>"), nil
		}),
		Count: 3,
	})
	if err != nil {
		t.Fatalf("deploy group: %v", err)
	}

	svc, err := dep.DeployService(whisper.StudentManagementWSDL(), whisper.ServiceOptions{})
	if err != nil {
		t.Fatalf("deploy service: %v", err)
	}
	out, err := svc.Invoke(ctx, "StudentInformation",
		[]byte("<StudentInformation><StudentID>S1</StudentID></StudentInformation>"))
	if err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if !strings.Contains(string(out), "Maria") {
		t.Errorf("out = %q", out)
	}

	// Failover through the public API.
	if _, err := group.CrashCoordinator(); err != nil {
		t.Fatalf("crash: %v", err)
	}
	if _, err := svc.Invoke(ctx, "StudentInformation",
		[]byte("<StudentInformation><StudentID>S1</StudentID></StudentInformation>")); err != nil {
		t.Fatalf("invoke after crash: %v", err)
	}
}

func TestPublicAPIOntologyAndWSDL(t *testing.T) {
	// The combined ontology keeps terms under their source namespaces;
	// resolve them through the University ontology's base URI.
	u := whisper.UniversityOntology()
	r := whisper.NewReasoner(whisper.CombinedOntology())
	if !r.IsSubClassOf(u.Term("TranscriptInfo"), u.Term("StudentInfo")) {
		t.Error("reasoner through public API broken")
	}
	defs := whisper.StudentManagementWSDL()
	data := defs.Serialize()
	back, err := whisper.ParseWSDL(data)
	if err != nil {
		t.Fatalf("parse wsdl: %v", err)
	}
	sig, err := back.Signature("StudentInformation")
	if err != nil {
		t.Fatalf("signature: %v", err)
	}
	if got := r.MatchConcepts(sig.Action, sig.Action); got != whisper.MatchExact {
		t.Errorf("self match = %v", got)
	}
	custom := whisper.NewWSDL("Custom", "http://example.org/custom")
	if custom.Name != "Custom" {
		t.Errorf("custom wsdl name = %q", custom.Name)
	}
	onto := whisper.NewOntology("http://example.org/o")
	onto.AddClass("Thing1")
	if onto.Class("Thing1") == nil {
		t.Error("ontology builder through public API broken")
	}
}
